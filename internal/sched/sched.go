// Package sched provides the parallel-loop machinery of the paper's §3: a
// persistent worker pool, a traditional parallel_for whose body sees only an
// iteration index, a dynamic chunk scheduler (contiguous chunks of the
// iteration space handed to threads as they become available — Grazelle's
// Edge-phase scheduler, 32·n chunks by default), and the scheduler-aware
// interface, the paper's first contribution: StartChunk / LoopIteration /
// FinishChunk hooks plus a per-chunk merge buffer that together eliminate
// all inner-loop synchronization.
package sched

import (
	"runtime"

	"sync/atomic"
)

// Pool is a fixed set of worker goroutines, the stand-in for Grazelle's
// pthreads pinned one per logical core. Graph phases are microseconds long,
// so the fork-join barrier is latency-critical: workers spin briefly
// (yielding to the Go scheduler) before falling back to a channel sleep, so
// a phase dispatch costs well under a microsecond on a warm pool while an
// idle pool still parks its goroutines. The zero value is not usable; call
// NewPool.
type Pool struct {
	workers int
	// fn is the current task; written by Run before the epoch advance that
	// publishes it (the atomic establishes the happens-before edge).
	fn func(tid int)
	// epoch counts Run invocations; workers watch it for new work.
	epoch atomic.Uint64
	// done counts workers that finished the current task.
	done atomic.Int64
	// sleeping[tid] marks a worker parked on its wake channel.
	sleeping []atomic.Bool
	wake     []chan struct{}
	closed   atomic.Bool
}

// spinYields is how many scheduler yields a worker performs before parking.
const spinYields = 256

// NewPool starts a pool with the given number of workers; n < 1 selects
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:  n,
		sleeping: make([]atomic.Bool, n),
		wake:     make([]chan struct{}, n),
	}
	for tid := 1; tid < n; tid++ {
		p.wake[tid] = make(chan struct{}, 1)
		go p.worker(tid)
	}
	return p
}

func (p *Pool) worker(tid int) {
	last := uint64(0)
	for {
		// Wait for a new epoch: spin-yield first, then park.
		spins := 0
		for p.epoch.Load() == last {
			if p.closed.Load() {
				return
			}
			spins++
			if spins < spinYields {
				runtime.Gosched()
				continue
			}
			p.sleeping[tid].Store(true)
			if p.epoch.Load() != last || p.closed.Load() {
				p.sleeping[tid].Store(false)
				continue
			}
			<-p.wake[tid]
			p.sleeping[tid].Store(false)
			spins = 0
		}
		last++
		p.fn(tid)
		p.done.Add(1)
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close terminates the worker goroutines. The pool must not be used after.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for tid := 1; tid < p.workers; tid++ {
		select {
		case p.wake[tid] <- struct{}{}:
		default:
		}
	}
}

// Run executes fn once on every worker (fn receives the worker id) and
// waits for all of them — a fork-join barrier. Worker 0 is the caller.
// Run must not be called concurrently with itself or Close.
func (p *Pool) Run(fn func(tid int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	p.fn = fn
	p.done.Store(0)
	p.epoch.Add(1)
	for tid := 1; tid < p.workers; tid++ {
		if p.sleeping[tid].Load() {
			select {
			case p.wake[tid] <- struct{}{}:
			default:
			}
		}
	}
	fn(0)
	for p.done.Load() != int64(p.workers-1) {
		runtime.Gosched()
	}
}

// Range is a half-open interval of loop iterations.
type Range struct{ Lo, Hi int }

// Len returns the iteration count of the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// DefaultChunks is the paper's scheduling granularity: 32 chunks per thread
// achieved near-ideal load balance (§5).
func DefaultChunks(workers int) int { return 32 * workers }

// ChunkSize converts a desired chunk count into a chunk size covering total
// iterations (at least 1).
func ChunkSize(total, chunks int) int {
	if chunks < 1 {
		chunks = 1
	}
	size := (total + chunks - 1) / chunks
	if size < 1 {
		size = 1
	}
	return size
}

// NumChunks returns how many chunks of the given size cover total
// iterations.
func NumChunks(total, chunkSize int) int {
	if total == 0 {
		return 0
	}
	return (total + chunkSize - 1) / chunkSize
}

// DynamicFor statically chunks [0, total) into contiguous chunks of
// chunkSize iterations and dynamically assigns chunks to workers as they
// become available (an atomic ticket counter — work assignment is dynamic,
// the iteration→chunk mapping is static, exactly the constraint §3 places on
// schedulers so the merge buffer can be preallocated). body runs once per
// chunk.
func (p *Pool) DynamicFor(total, chunkSize int, body func(r Range, chunkID, tid int)) {
	numChunks := NumChunks(total, chunkSize)
	if numChunks == 0 {
		return
	}
	var next atomic.Int64
	p.Run(func(tid int) {
		for {
			id := int(next.Add(1)) - 1
			if id >= numChunks {
				return
			}
			lo := id * chunkSize
			hi := lo + chunkSize
			if hi > total {
				hi = total
			}
			body(Range{Lo: lo, Hi: hi}, id, tid)
		}
	})
}

// StaticFor divides [0, total) into one contiguous chunk per worker —
// Grazelle's Vertex-phase scheduler, where work is regular enough that load
// balancing is not a problem.
func (p *Pool) StaticFor(total int, body func(r Range, tid int)) {
	if total == 0 {
		return
	}
	per := (total + p.workers - 1) / p.workers
	p.Run(func(tid int) {
		lo := tid * per
		if lo >= total {
			return
		}
		hi := lo + per
		if hi > total {
			hi = total
		}
		body(Range{Lo: lo, Hi: hi}, tid)
	})
}

// ParallelFor is the traditional interface (Cilk Plus / OpenMP style): the
// body sees one iteration index and must assume every iteration may run on
// a different thread. Iterations are delivered through the same dynamic
// chunk scheduler as DynamicFor, but the body cannot exploit that.
func (p *Pool) ParallelFor(total, chunkSize int, body func(i, tid int)) {
	p.DynamicFor(total, chunkSize, func(r Range, _, tid int) {
		for i := r.Lo; i < r.Hi; i++ {
			body(i, tid)
		}
	})
}

// Hooks is the scheduler-aware loop interface of Fig 3. T is the
// thread-local chunk state (the paper's TLS block). StartChunk initializes
// it, LoopIteration advances it over one iteration, FinishChunk disposes of
// it — typically by saving a partial aggregate into a merge buffer slot
// indexed by chunkID.
type Hooks[T any] struct {
	StartChunk    func(first, tid int) T
	LoopIteration func(st T, i, tid int) T
	FinishChunk   func(st T, last, chunkID, tid int)
}

// SchedulerAwareFor runs the scheduler-aware loop over [0, total) on pool p.
// Chunking follows DynamicFor, so consecutive iterations of a chunk execute
// on one thread and the hooks may keep their state in registers.
func SchedulerAwareFor[T any](p *Pool, total, chunkSize int, h Hooks[T]) {
	p.DynamicFor(total, chunkSize, func(r Range, chunkID, tid int) {
		st := h.StartChunk(r.Lo, tid)
		for i := r.Lo; i < r.Hi; i++ {
			st = h.LoopIteration(st, i, tid)
		}
		h.FinishChunk(st, r.Hi-1, chunkID, tid)
	})
}
