// Package sched provides the parallel-loop machinery of the paper's §3: a
// persistent worker pool, a traditional parallel_for whose body sees only an
// iteration index, a dynamic chunk scheduler (contiguous chunks of the
// iteration space handed to threads as they become available — Grazelle's
// Edge-phase scheduler, 32·n chunks by default), and the scheduler-aware
// interface, the paper's first contribution: StartChunk / LoopIteration /
// FinishChunk hooks plus a per-chunk merge buffer that together eliminate
// all inner-loop synchronization.
//
// The pool is a job-queue scheduler: any number of goroutines may submit
// fork-join jobs concurrently and the pool multiplexes their slots over one
// worker set. All per-job state (ticket counters, completion counts) lives
// in the job, so concurrent DynamicFor/SchedulerAwareFor calls never share
// scheduler state and each preserves its chunk contract — chunk ids, chunk
// ranges, and therefore merge-buffer layout and results are identical to a
// solo run.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Pool is a fixed set of worker goroutines, the stand-in for Grazelle's
// pthreads pinned one per logical core. Graph phases are microseconds long,
// so the fork-join barrier is latency-critical: workers spin briefly
// (yielding to the Go scheduler) before falling back to a channel sleep, so
// a job dispatch costs well under a microsecond on a warm pool while an
// idle pool still parks its goroutines. The zero value is not usable; call
// NewPool.
//
// Pool is safe for concurrent use: Run and the loop helpers may be called
// from any number of goroutines at once, and Close is idempotent. Each
// submitted job carries its own ticket state; a submitting goroutine helps
// execute its own job's slots, so progress never depends on a worker being
// free.
type Pool struct {
	workers int
	// jobs is a copy-on-write snapshot of the active job list. Workers read
	// it lock-free; mu serializes the writers (submit and finish).
	jobs atomic.Pointer[[]*job]
	mu   sync.Mutex
	// maxJobs bounds the active job count when positive: submit parks the
	// submitting goroutine on jobsFree until a slot opens. This is how an
	// admission limit threads down to job submission — a serving layer caps
	// concurrent queries and gives the shared pool the same bound, so even a
	// misbehaving caller cannot pile unbounded jobs onto the worker set.
	maxJobs  int
	jobsFree *sync.Cond
	// capUnits counts active jobs against maxJobs, with every Group counted
	// once no matter how many of its jobs are live — one admitted query may
	// scatter per-partition jobs without eating sibling queries' slots.
	// Guarded by mu.
	capUnits int
	// seq counts job submissions; idle workers watch it for new work.
	seq atomic.Uint64
	// panics counts recovered job-body panics (slot- and chunk-level), for
	// health reporting.
	panics atomic.Uint64
	// sleeping[wid] marks a worker parked on its wake channel.
	sleeping  []atomic.Bool
	wake      []chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once
	// metrics, when set, receives per-job timing observations. Held behind
	// an atomic pointer so the hot path pays one load + nil check when
	// metrics are off.
	metrics atomic.Pointer[PoolMetrics]
}

// PoolMetrics carries the optional scheduler histograms fed by Run: JobWait
// observes seconds a submitter spent blocked on the active-job cap before
// its job was published (0 when it sailed through — the count then equals
// jobs submitted), JobExec observes seconds from publication to barrier
// completion. Nil histograms are skipped individually.
type PoolMetrics struct {
	JobWait *obs.Histogram
	JobExec *obs.Histogram
}

// job is one fork-join task: slots virtual thread ids, each executed exactly
// once by whichever executor (pool worker or submitter) claims it. The slot
// index is the "tid" the body sees, so tid-indexed state is per-job even
// when several jobs share the physical workers.
type job struct {
	fn    func(tid int)
	slots int64
	// group, when non-nil, makes this job share one active-job cap unit with
	// every other live job of the same Group (see Pool.RunGrouped).
	group *Group
	// next is the slot ticket; done counts completed slots.
	next atomic.Int64
	done atomic.Int64
	// panicked holds the first panic any slot raised; the job still runs its
	// barrier to completion and the pool stays healthy, but Run reports it.
	panicked atomic.Pointer[PanicError]
	// fin is closed by whichever executor completes the last slot.
	fin chan struct{}
}

// spinYields is how many scheduler yields a worker performs before parking.
const spinYields = 256

// NewPool starts a pool with the given number of workers; n < 1 selects
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:  n,
		sleeping: make([]atomic.Bool, n),
		wake:     make([]chan struct{}, n),
	}
	for wid := 1; wid < n; wid++ {
		p.wake[wid] = make(chan struct{}, 1)
		go p.worker(wid)
	}
	return p
}

// loadJobs returns the current job-list snapshot (nil when idle).
func (p *Pool) loadJobs() []*job {
	if jp := p.jobs.Load(); jp != nil {
		return *jp
	}
	return nil
}

// tryWork scans the active jobs and executes every slot it can claim,
// reporting whether it executed anything.
func (p *Pool) tryWork() bool {
	worked := false
	for _, j := range p.loadJobs() {
		for {
			s := j.next.Add(1) - 1
			if s >= j.slots {
				break
			}
			worked = true
			p.runSlot(j, s)
		}
	}
	return worked
}

// runSlot executes one claimed slot under a recover barrier: a panicking job
// body is converted into the job's PanicError instead of killing the
// executor (a pool worker goroutine, or a submitter helping out). The
// completion accounting lives in the deferred block so a panicked slot still
// counts toward the barrier — the job always finishes and waiters never
// hang.
func (p *Pool) runSlot(j *job, s int64) {
	defer func() {
		if r := recover(); r != nil {
			j.panicked.CompareAndSwap(nil, NewPanicError(r))
			p.panics.Add(1)
		}
		if j.done.Add(1) == j.slots {
			p.finish(j)
		}
	}()
	j.fn(int(s))
}

func (p *Pool) worker(wid int) {
	spins := 0
	for {
		if p.closed.Load() {
			return
		}
		seq := p.seq.Load()
		if p.tryWork() {
			spins = 0
			continue
		}
		if p.seq.Load() != seq {
			continue
		}
		spins++
		if spins < spinYields {
			runtime.Gosched()
			continue
		}
		p.sleeping[wid].Store(true)
		if p.seq.Load() != seq || p.closed.Load() {
			p.sleeping[wid].Store(false)
			spins = 0
			continue
		}
		<-p.wake[wid]
		p.sleeping[wid].Store(false)
		spins = 0
	}
}

// SetMaxActiveJobs bounds the number of concurrently active jobs; further
// submissions block until a running job finishes. n < 1 removes the bound.
// Blocked submissions proceed when the pool is closed (the submitter then
// executes its own slots inline). Call before the pool is shared.
func (p *Pool) SetMaxActiveJobs(n int) {
	p.mu.Lock()
	p.maxJobs = n
	if p.jobsFree == nil {
		p.jobsFree = sync.NewCond(&p.mu)
	}
	p.jobsFree.Broadcast()
	p.mu.Unlock()
}

// ActiveJobs returns the number of jobs currently published to the workers.
func (p *Pool) ActiveJobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.loadJobs())
}

// submit publishes a job and wakes parked workers. A job whose group
// already holds a cap unit bypasses the active-job bound: the group was
// admitted as a whole, and blocking its siblings behind other queries'
// jobs would serialize (or, with reentrant submitters, deadlock) the
// scatter phase the group exists for.
func (p *Pool) submit(j *job) {
	p.mu.Lock()
	for p.maxJobs > 0 && p.capUnits >= p.maxJobs && !p.closed.Load() &&
		!(j.group != nil && j.group.active > 0) {
		p.jobsFree.Wait()
	}
	if j.group != nil {
		if j.group.active == 0 {
			p.capUnits++
			// Parked siblings of this group must recheck: they bypass the
			// cap now that the group holds its unit, and no job finish is
			// coming to signal them.
			if p.jobsFree != nil {
				p.jobsFree.Broadcast()
			}
		}
		j.group.active++
	} else {
		p.capUnits++
	}
	old := p.loadJobs()
	nw := make([]*job, len(old)+1)
	copy(nw, old)
	nw[len(old)] = j
	p.jobs.Store(&nw)
	p.mu.Unlock()
	p.seq.Add(1)
	for wid := 1; wid < p.workers; wid++ {
		if p.sleeping[wid].Load() {
			select {
			case p.wake[wid] <- struct{}{}:
			default:
			}
		}
	}
}

// finish removes a completed job from the active list and releases its
// waiter. Called exactly once per job, by whichever executor completed the
// last slot.
func (p *Pool) finish(j *job) {
	p.mu.Lock()
	old := p.loadJobs()
	nw := make([]*job, 0, len(old)-1)
	for _, o := range old {
		if o != j {
			nw = append(nw, o)
		}
	}
	p.jobs.Store(&nw)
	if j.group != nil {
		j.group.active--
		if j.group.active == 0 {
			p.capUnits--
		}
	} else {
		p.capUnits--
	}
	if p.jobsFree != nil {
		p.jobsFree.Signal()
	}
	p.mu.Unlock()
	close(j.fin)
}

// Group ties several concurrent jobs of one logical run together so they
// consume a single unit of the pool's active-job cap: the unit is taken when
// the group's first job is published and returned when its last live job
// finishes. The partitioned coordinator scatters one admitted query's edge
// (or vertex) phase as P per-partition jobs through a Group, preserving the
// serving layer's invariant that admitted queries == active cap units.
//
// A Group is safe for concurrent RunGrouped calls and may be reused across
// phases; the zero state holds no cap unit.
type Group struct {
	// active counts the group's currently published jobs; the group holds a
	// cap unit exactly while active > 0. Guarded by the pool's mu.
	active int
}

// NewGroup returns a job group for use with RunGrouped.
func (p *Pool) NewGroup() *Group { return &Group{} }

// SetMetrics attaches (or detaches, with nil) the pool's timing histograms.
// Safe to call concurrently with Run; in-flight jobs may observe either
// setting.
func (p *Pool) SetMetrics(m *PoolMetrics) { p.metrics.Store(m) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Panics returns the cumulative count of job-body panics the pool has
// recovered. A nonzero value means some runs failed, never that the pool is
// unhealthy — recovered panics leave the workers running.
func (p *Pool) Panics() uint64 { return p.panics.Load() }

// Close terminates the worker goroutines. Close is idempotent; the pool
// must not be used after the first Close. Jobs already executing complete.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		p.mu.Lock()
		if p.jobsFree != nil {
			p.jobsFree.Broadcast()
		}
		p.mu.Unlock()
		for wid := 1; wid < p.workers; wid++ {
			select {
			case p.wake[wid] <- struct{}{}:
			default:
			}
		}
	})
}

// Run executes fn once for every virtual thread id in [0, Workers()) and
// waits for all of them — a fork-join barrier. The submitting goroutine
// helps execute its own job's slots, so a single-worker pool runs inline
// and a busy pool never deadlocks a submitter. Run may be called from many
// goroutines concurrently; each call is an independent job and its tids are
// private to it.
//
// A panic in fn is contained to this job: every slot still reaches the
// barrier, sibling jobs and the worker goroutines are untouched, and Run
// returns the first panic as a *PanicError. A nil return means every slot
// ran to completion.
func (p *Pool) Run(fn func(tid int)) error { return p.runJob(fn, nil) }

// RunGrouped is Run with the job accounted to g: all live jobs of one group
// consume a single unit of the active-job cap, so a partitioned run can
// scatter concurrent per-partition jobs under the one admission slot its
// query holds. g == nil behaves exactly like Run.
func (p *Pool) RunGrouped(g *Group, fn func(tid int)) error { return p.runJob(fn, g) }

func (p *Pool) runJob(fn func(tid int), g *Group) error {
	m := p.metrics.Load()
	if p.workers == 1 {
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		var pe *PanicError
		func() {
			defer func() {
				if r := recover(); r != nil {
					pe = NewPanicError(r)
					p.panics.Add(1)
				}
			}()
			fn(0)
		}()
		if m != nil {
			if m.JobWait != nil {
				m.JobWait.Observe(0)
			}
			if m.JobExec != nil {
				m.JobExec.Observe(time.Since(t0).Seconds())
			}
		}
		if pe != nil {
			return pe
		}
		return nil
	}
	j := &job{fn: fn, slots: int64(p.workers), fin: make(chan struct{}), group: g}
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	p.submit(j)
	var t1 time.Time
	if m != nil {
		t1 = time.Now()
		if m.JobWait != nil {
			m.JobWait.Observe(t1.Sub(t0).Seconds())
		}
	}
	for {
		s := j.next.Add(1) - 1
		if s >= j.slots {
			break
		}
		p.runSlot(j, s)
	}
	// Wait for slots claimed by workers: spin briefly (phases are
	// microseconds), then block.
	finished := false
	for spins := 0; spins < spinYields; spins++ {
		select {
		case <-j.fin:
			finished = true
		default:
		}
		if finished {
			break
		}
		runtime.Gosched()
	}
	if !finished {
		<-j.fin
	}
	if m != nil && m.JobExec != nil {
		m.JobExec.Observe(time.Since(t1).Seconds())
	}
	return j.err()
}

// err converts a finished job's panic record into Run's return value. The
// explicit nil check avoids wrapping a typed nil pointer in the error
// interface.
func (j *job) err() error {
	if pe := j.panicked.Load(); pe != nil {
		return pe
	}
	return nil
}

// Range is a half-open interval of loop iterations.
type Range struct{ Lo, Hi int }

// Len returns the iteration count of the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// DefaultChunks is the paper's scheduling granularity: 32 chunks per thread
// achieved near-ideal load balance (§5).
func DefaultChunks(workers int) int { return 32 * workers }

// ChunkSize converts a desired chunk count into a chunk size covering total
// iterations (at least 1).
func ChunkSize(total, chunks int) int {
	if chunks < 1 {
		chunks = 1
	}
	size := (total + chunks - 1) / chunks
	if size < 1 {
		size = 1
	}
	return size
}

// NumChunks returns how many chunks of the given size cover total
// iterations.
func NumChunks(total, chunkSize int) int {
	if total == 0 {
		return 0
	}
	return (total + chunkSize - 1) / chunkSize
}

// DynamicFor statically chunks [0, total) into contiguous chunks of
// chunkSize iterations and dynamically assigns chunks to workers as they
// become available (an atomic ticket counter — work assignment is dynamic,
// the iteration→chunk mapping is static, exactly the constraint §3 places on
// schedulers so the merge buffer can be preallocated). body runs once per
// chunk. The ticket is per-call, so concurrent DynamicFor jobs on one pool
// are independent.
//
// A panic in body is contained by the pool (workers and sibling jobs
// survive) and rethrown on the calling goroutine as a *PanicError; callers
// that want it as a value use DynamicForCtx.
func (p *Pool) DynamicFor(total, chunkSize int, body func(r Range, chunkID, tid int)) {
	Rethrow(p.DynamicForCtx(context.Background(), total, chunkSize, body))
}

// DynamicForCtx is DynamicFor with cancellation and panic containment at
// chunk granularity: when ctx is cancelled, no further chunks are claimed,
// in-flight chunks run to completion, and the error (ctx.Err()) is
// returned. When a chunk body panics, the panic is captured as a
// *PanicError, no executor claims further chunks (fail fast — the loop's
// output is already lost), and the error is returned. A nil error means
// every chunk executed.
func (p *Pool) DynamicForCtx(ctx context.Context, total, chunkSize int, body func(r Range, chunkID, tid int)) error {
	numChunks := NumChunks(total, chunkSize)
	if numChunks == 0 {
		return ctx.Err()
	}
	done := ctx.Done()
	var next atomic.Int64
	var panicked atomic.Pointer[PanicError]
	err := p.Run(func(tid int) {
		for {
			if panicked.Load() != nil {
				return
			}
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			id := int(next.Add(1)) - 1
			if id >= numChunks {
				return
			}
			lo := id * chunkSize
			hi := lo + chunkSize
			if hi > total {
				hi = total
			}
			p.runChunk(&panicked, body, Range{Lo: lo, Hi: hi}, id, tid)
		}
	})
	if pe := panicked.Load(); pe != nil {
		return pe
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// runChunk executes one chunk under a recover barrier, recording the first
// panic in the loop's shared slot. Containing the panic here (rather than
// letting it unwind to the slot barrier in runSlot) keeps the executor's
// claim loop alive for sibling jobs' work and lets the loop fail fast.
func (p *Pool) runChunk(panicked *atomic.Pointer[PanicError], body func(r Range, chunkID, tid int), rg Range, chunkID, tid int) {
	defer func() {
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, NewPanicError(r))
			p.panics.Add(1)
		}
	}()
	if err := fault.Inject("sched/chunk"); err != nil {
		panic(err)
	}
	body(rg, chunkID, tid)
}

// Rethrow re-raises a *PanicError returned by an error-reporting loop on
// the current goroutine — how the fire-and-forget loop variants (DynamicFor,
// StaticFor, ...) preserve their historical contract that a body panic is
// visible at the call site rather than silently swallowed. Non-panic errors
// (and nil) pass through untouched.
func Rethrow(err error) {
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
}

// StaticFor divides [0, total) into one contiguous chunk per worker —
// Grazelle's Vertex-phase scheduler, where work is regular enough that load
// balancing is not a problem. A panic in body fails only this loop (the
// pool survives) and is rethrown on the calling goroutine as a *PanicError.
func (p *Pool) StaticFor(total int, body func(r Range, tid int)) {
	if total == 0 {
		return
	}
	per := (total + p.workers - 1) / p.workers
	Rethrow(p.Run(func(tid int) {
		lo := tid * per
		if lo >= total {
			return
		}
		hi := lo + per
		if hi > total {
			hi = total
		}
		body(Range{Lo: lo, Hi: hi}, tid)
	}))
}

// ParallelFor is the traditional interface (Cilk Plus / OpenMP style): the
// body sees one iteration index and must assume every iteration may run on
// a different thread. Iterations are delivered through the same dynamic
// chunk scheduler as DynamicFor, but the body cannot exploit that.
func (p *Pool) ParallelFor(total, chunkSize int, body func(i, tid int)) {
	p.DynamicFor(total, chunkSize, func(r Range, _, tid int) {
		for i := r.Lo; i < r.Hi; i++ {
			body(i, tid)
		}
	})
}

// Hooks is the scheduler-aware loop interface of Fig 3. T is the
// thread-local chunk state (the paper's TLS block). StartChunk initializes
// it, LoopIteration advances it over one iteration, FinishChunk disposes of
// it — typically by saving a partial aggregate into a merge buffer slot
// indexed by chunkID.
type Hooks[T any] struct {
	StartChunk    func(first, tid int) T
	LoopIteration func(st T, i, tid int) T
	FinishChunk   func(st T, last, chunkID, tid int)
}

// SchedulerAwareFor runs the scheduler-aware loop over [0, total) on pool p.
// Chunking follows DynamicFor, so consecutive iterations of a chunk execute
// on one thread and the hooks may keep their state in registers. A panic in
// a hook fails only this loop and is rethrown on the calling goroutine.
func SchedulerAwareFor[T any](p *Pool, total, chunkSize int, h Hooks[T]) {
	Rethrow(SchedulerAwareForCtx(context.Background(), p, total, chunkSize, h))
}

// SchedulerAwareForCtx is SchedulerAwareFor with cancellation at chunk
// boundaries: chunks that start always run StartChunk/LoopIteration*/
// FinishChunk to completion (so every claimed chunk's merge slot is saved),
// but no new chunks are claimed after ctx is cancelled.
func SchedulerAwareForCtx[T any](ctx context.Context, p *Pool, total, chunkSize int, h Hooks[T]) error {
	return p.DynamicForCtx(ctx, total, chunkSize, func(r Range, chunkID, tid int) {
		st := h.StartChunk(r.Lo, tid)
		for i := r.Lo; i < r.Hi; i++ {
			st = h.LoopIteration(st, i, tid)
		}
		h.FinishChunk(st, r.Hi-1, chunkID, tid)
	})
}
