package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func withPool(t *testing.T, n int, fn func(p *Pool)) {
	t.Helper()
	p := NewPool(n)
	defer p.Close()
	fn(p)
}

func TestPoolRunReachesAllWorkers(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		if p.Workers() != 4 {
			t.Fatalf("Workers = %d", p.Workers())
		}
		var seen [4]atomic.Int64
		p.Run(func(tid int) { seen[tid].Add(1) })
		for tid := range seen {
			if seen[tid].Load() != 1 {
				t.Errorf("worker %d ran %d times, want 1", tid, seen[tid].Load())
			}
		}
	})
}

func TestPoolRunIsBarrier(t *testing.T) {
	withPool(t, 3, func(p *Pool) {
		var done atomic.Int64
		p.Run(func(tid int) { done.Add(1) })
		if done.Load() != 3 {
			t.Fatalf("Run returned before all workers finished: %d", done.Load())
		}
	})
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatal("pool has no workers")
	}
}

func TestChunkMath(t *testing.T) {
	if DefaultChunks(4) != 128 {
		t.Errorf("DefaultChunks(4) = %d, want 128 (32 per thread)", DefaultChunks(4))
	}
	if ChunkSize(100, 10) != 10 || ChunkSize(101, 10) != 11 || ChunkSize(5, 100) != 1 {
		t.Error("ChunkSize wrong")
	}
	if NumChunks(100, 10) != 10 || NumChunks(101, 10) != 11 || NumChunks(0, 10) != 0 {
		t.Error("NumChunks wrong")
	}
}

func TestDynamicForCoversExactly(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const total = 1003
		hits := make([]atomic.Int32, total)
		var chunkIDs sync.Map
		p.DynamicFor(total, 17, func(r Range, chunkID, tid int) {
			if _, dup := chunkIDs.LoadOrStore(chunkID, true); dup {
				t.Errorf("chunk %d delivered twice", chunkID)
			}
			for i := r.Lo; i < r.Hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
			}
		}
	})
}

func TestDynamicForChunkShapes(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		var mu sync.Mutex
		got := map[int]Range{}
		p.DynamicFor(25, 10, func(r Range, chunkID, tid int) {
			mu.Lock()
			got[chunkID] = r
			mu.Unlock()
		})
		want := map[int]Range{0: {0, 10}, 1: {10, 20}, 2: {20, 25}}
		for id, r := range want {
			if got[id] != r {
				t.Errorf("chunk %d = %v, want %v", id, got[id], r)
			}
		}
		if len(got) != 3 {
			t.Errorf("%d chunks, want 3", len(got))
		}
	})
}

func TestDynamicForEmpty(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		ran := false
		p.DynamicFor(0, 10, func(Range, int, int) { ran = true })
		if ran {
			t.Error("body ran for empty iteration space")
		}
	})
}

func TestStaticForCoversAndBalances(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const total = 103
		hits := make([]atomic.Int32, total)
		perWorker := make([]atomic.Int64, 4)
		p.StaticFor(total, func(r Range, tid int) {
			perWorker[tid].Add(int64(r.Len()))
			for i := r.Lo; i < r.Hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
			}
		}
		// ceil(103/4)=26; workers get 26,26,26,25.
		for tid := 0; tid < 4; tid++ {
			if n := perWorker[tid].Load(); n < 25 || n > 26 {
				t.Errorf("worker %d got %d iterations", tid, n)
			}
		}
	})
}

func TestParallelForSum(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		var sum atomic.Int64
		p.ParallelFor(1000, 13, func(i, tid int) { sum.Add(int64(i)) })
		if want := int64(1000 * 999 / 2); sum.Load() != want {
			t.Errorf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

func TestSchedulerAwareForHookSequence(t *testing.T) {
	withPool(t, 1, func(p *Pool) {
		// Single worker: hooks must follow Start, Iter*, Finish per chunk in
		// ascending chunk order.
		type st struct{ first, count int }
		var log []st
		SchedulerAwareFor(p, 10, 4, Hooks[st]{
			StartChunk: func(first, tid int) st { return st{first: first} },
			LoopIteration: func(s st, i, tid int) st {
				if i != s.first+s.count {
					t.Errorf("iteration %d out of order (first %d, count %d)", i, s.first, s.count)
				}
				s.count++
				return s
			},
			FinishChunk: func(s st, last, chunkID, tid int) {
				if last != s.first+s.count-1 {
					t.Errorf("chunk %d last = %d, want %d", chunkID, last, s.first+s.count-1)
				}
				log = append(log, s)
			},
		})
		if len(log) != 3 || log[0].count != 4 || log[1].count != 4 || log[2].count != 2 {
			t.Errorf("chunk log = %+v", log)
		}
	})
}

// TestSchedulerAwareReduction verifies the paper's core claim mechanically:
// a sum reduction built on the scheduler-aware interface with a per-chunk
// merge needs no atomics and still produces the exact serial result.
func TestSchedulerAwareReduction(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const total = 100000
		numChunks := NumChunks(total, 37)
		partials := make([]uint64, numChunks)
		SchedulerAwareFor(p, total, 37, Hooks[uint64]{
			StartChunk:    func(first, tid int) uint64 { return 0 },
			LoopIteration: func(acc uint64, i, tid int) uint64 { return acc + uint64(i) },
			FinishChunk:   func(acc uint64, last, chunkID, tid int) { partials[chunkID] = acc },
		})
		var sum uint64
		for _, v := range partials {
			sum += v
		}
		if want := uint64(total) * (total - 1) / 2; sum != want {
			t.Errorf("sum = %d, want %d", sum, want)
		}
	})
}

func TestMergeBufferSaveMerge(t *testing.T) {
	b := NewMergeBuffer(4)
	if b.Slots() != 4 {
		t.Fatalf("Slots = %d", b.Slots())
	}
	b.Save(0, 7, 100)
	b.Save(2, 7, 11)
	b.Save(3, 9, 5)
	got := map[uint32]uint64{}
	n := b.Merge(func(dest uint32, v uint64) { got[dest] += v })
	if n != 3 {
		t.Errorf("Merge folded %d slots, want 3", n)
	}
	if got[7] != 111 || got[9] != 5 {
		t.Errorf("merged values = %v", got)
	}
	// Buffer must be clear after Merge.
	if b.Merge(func(uint32, uint64) { t.Error("slot survived Merge") }) != 0 {
		t.Error("second Merge folded slots")
	}
}

func TestMergeBufferReset(t *testing.T) {
	b := NewMergeBuffer(2)
	b.Save(1, 3, 9)
	b.Reset()
	if b.Merge(func(uint32, uint64) {}) != 0 {
		t.Error("Reset did not clear slots")
	}
}

func TestMergeBufferGrow(t *testing.T) {
	b := NewMergeBuffer(2)
	b.Save(1, 5, 50)
	b.Grow(8)
	if b.Slots() != 8 {
		t.Fatalf("Slots after Grow = %d", b.Slots())
	}
	b.Save(7, 6, 60)
	got := map[uint32]uint64{}
	b.Merge(func(dest uint32, v uint64) { got[dest] = v })
	if got[5] != 50 || got[6] != 60 {
		t.Errorf("Grow lost data: %v", got)
	}
	b.Grow(4) // shrink request is a no-op
	if b.Slots() != 8 {
		t.Error("Grow shrank the buffer")
	}
}

// Property: DynamicFor covers every iteration exactly once for arbitrary
// sizes and granularities.
func TestDynamicForCoverageProperty(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := rng.Intn(2000)
		chunk := rng.Intn(100) + 1
		hits := make([]atomic.Int32, total)
		p.DynamicFor(total, chunk, func(r Range, _, _ int) {
			for i := r.Lo; i < r.Hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a scheduler-aware min-reduction over random data matches the
// serial result for any chunking — the Connected Components aggregation.
func TestSchedulerAwareMinProperty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := rng.Intn(5000) + 1
		chunk := rng.Intn(200) + 1
		data := make([]uint64, total)
		for i := range data {
			data[i] = rng.Uint64()
		}
		want := ^uint64(0)
		for _, v := range data {
			if v < want {
				want = v
			}
		}
		numChunks := NumChunks(total, chunk)
		buf := NewMergeBuffer(numChunks)
		SchedulerAwareFor(p, total, chunk, Hooks[uint64]{
			StartChunk: func(first, tid int) uint64 { return ^uint64(0) },
			LoopIteration: func(acc uint64, i, tid int) uint64 {
				if data[i] < acc {
					return data[i]
				}
				return acc
			},
			FinishChunk: func(acc uint64, last, chunkID, tid int) { buf.Save(chunkID, 0, acc) },
		})
		got := ^uint64(0)
		buf.Merge(func(_ uint32, v uint64) {
			if v < got {
				got = v
			}
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
