package sched

import "sync/atomic"

// This file provides a work-stealing chunk scheduler as an alternative to
// the ticket-counter dynamic scheduler. The paper's §3 stresses that the
// scheduler-aware interface "does not restrict the behavior of the
// scheduler itself" beyond requiring a static, contiguous iteration→chunk
// mapping (Cilk Plus, whose work-stealing runtime Ligra uses, satisfies
// it). This scheduler demonstrates that property: chunks are dealt into
// per-worker queues and idle workers steal from victims, yet chunk ids stay
// stable, so the same merge buffer works unchanged.

// stealQueue is a fixed range of chunk ids owned by one worker, consumed
// from the head by the owner and from the tail by thieves. Head and tail
// live packed in one atomic word (head in the high half, tail in the low),
// so each claim is a single CAS and the last chunk can never be taken from
// both ends at once.
type stealQueue struct {
	ht atomic.Uint64
	_  [56]byte
}

func packHT(head, tail uint32) uint64 { return uint64(head)<<32 | uint64(tail) }

func unpackHT(v uint64) (head, tail uint32) { return uint32(v >> 32), uint32(v) }

// claimOwn takes a chunk from the owner's end, returning -1 when empty.
func (q *stealQueue) claimOwn() int64 {
	for {
		v := q.ht.Load()
		h, t := unpackHT(v)
		if h >= t {
			return -1
		}
		if q.ht.CompareAndSwap(v, packHT(h+1, t)) {
			return int64(h)
		}
	}
}

// claimSteal takes a chunk from the thief's end, returning -1 when empty.
func (q *stealQueue) claimSteal() int64 {
	for {
		v := q.ht.Load()
		h, t := unpackHT(v)
		if h >= t {
			return -1
		}
		if q.ht.CompareAndSwap(v, packHT(h, t-1)) {
			return int64(t - 1)
		}
	}
}

// empty reports whether no chunks remain unclaimed.
func (q *stealQueue) empty() bool {
	h, t := unpackHT(q.ht.Load())
	return h >= t
}

// StealingFor schedules the chunks of [0, total) like DynamicFor, but deals
// them round-robin-contiguously into per-worker queues and lets idle
// workers steal. Chunk ids and ranges are identical to DynamicFor's, so
// scheduler-aware loop bodies (and their merge buffers) are oblivious to
// which scheduler ran them. A panic in body fails only this loop (claimed
// chunks are consumed, so the steal sweep still terminates) and is rethrown
// on the calling goroutine as a *PanicError.
//
// The return value is the number of chunks obtained by stealing (claimed
// from a victim's queue rather than the executor's own) — the load-imbalance
// signal the phase tracer records per run.
func (p *Pool) StealingFor(total, chunkSize int, body func(r Range, chunkID, tid int)) int64 {
	numChunks := NumChunks(total, chunkSize)
	if numChunks == 0 {
		return 0
	}
	workers := p.workers
	queues := make([]stealQueue, workers)
	for w := 0; w < workers; w++ {
		lo := uint32(numChunks * w / workers)
		hi := uint32(numChunks * (w + 1) / workers)
		queues[w].ht.Store(packHT(lo, hi))
	}
	var steals atomic.Int64
	run := func(id int64, tid int) {
		lo := int(id) * chunkSize
		hi := lo + chunkSize
		if hi > total {
			hi = total
		}
		body(Range{Lo: lo, Hi: hi}, int(id), tid)
	}
	Rethrow(p.Run(func(tid int) {
		// Drain own queue first.
		for {
			id := queues[tid].claimOwn()
			if id < 0 {
				break
			}
			run(id, tid)
		}
		// Then steal round-robin from victims until everything is done.
		for victim := (tid + 1) % workers; ; victim = (victim + 1) % workers {
			if victim == tid {
				// Completed a full sweep; check for any remaining work.
				remaining := false
				for w := range queues {
					if !queues[w].empty() {
						remaining = true
						break
					}
				}
				if !remaining {
					return
				}
				continue
			}
			if id := queues[victim].claimSteal(); id >= 0 {
				steals.Add(1)
				run(id, tid)
			}
		}
	}))
	return steals.Load()
}
