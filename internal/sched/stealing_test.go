package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestStealingForCoversExactly(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const total = 1003
	hits := make([]atomic.Int32, total)
	var chunkIDs sync.Map
	p.StealingFor(total, 17, func(r Range, chunkID, tid int) {
		if _, dup := chunkIDs.LoadOrStore(chunkID, true); dup {
			t.Errorf("chunk %d delivered twice", chunkID)
		}
		for i := r.Lo; i < r.Hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestStealingForChunkShapesMatchDynamic(t *testing.T) {
	// Chunk ids and ranges must be identical to DynamicFor's, so the
	// scheduler-aware merge buffer is scheduler-oblivious.
	p := NewPool(3)
	defer p.Close()
	collect := func(run func(int, int, func(Range, int, int))) map[int]Range {
		var mu sync.Mutex
		got := map[int]Range{}
		run(95, 10, func(r Range, chunkID, tid int) {
			mu.Lock()
			got[chunkID] = r
			mu.Unlock()
		})
		return got
	}
	dyn := collect(p.DynamicFor)
	steal := collect(func(total, cs int, body func(Range, int, int)) { p.StealingFor(total, cs, body) })
	if len(dyn) != len(steal) {
		t.Fatalf("chunk counts differ: %d vs %d", len(dyn), len(steal))
	}
	for id, r := range dyn {
		if steal[id] != r {
			t.Errorf("chunk %d: dynamic %v, stealing %v", id, r, steal[id])
		}
	}
}

func TestStealingForActuallySteals(t *testing.T) {
	// Make worker 0's chunks slow: other workers must take over some of
	// them. With 2+ workers and enough chunks this is deterministic enough
	// to assert weakly: at least one chunk of the first half runs on a
	// worker other than the one that owns it initially... assert simply
	// that all work completes promptly even with one slow chunk.
	p := NewPool(2)
	defer p.Close()
	var executed atomic.Int32
	steals := p.StealingFor(64, 1, func(r Range, chunkID, tid int) {
		if chunkID == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		executed.Add(1)
	})
	if executed.Load() != 64 {
		t.Fatalf("executed %d chunks, want 64", executed.Load())
	}
	// While the owner of chunk 0 sleeps, the other executor drains its own
	// queue in microseconds and must steal from the sleeper's.
	if steals == 0 {
		t.Error("expected at least one steal with a 20ms-slow chunk")
	}
	if steals > 63 {
		t.Errorf("steals = %d exceeds stealable chunks", steals)
	}
}

func TestStealingForSingleWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sum := 0
	steals := p.StealingFor(100, 7, func(r Range, chunkID, tid int) {
		for i := r.Lo; i < r.Hi; i++ {
			sum += i
		}
	})
	if sum != 100*99/2 {
		t.Errorf("sum = %d", sum)
	}
	if steals != 0 {
		t.Errorf("single worker reported %d steals", steals)
	}
}

func TestStealingForEmpty(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.StealingFor(0, 10, func(Range, int, int) { t.Error("body ran") })
}

func TestPackUnpackHT(t *testing.T) {
	for _, c := range [][2]uint32{{0, 0}, {1, 2}, {1 << 20, 1<<20 + 5}, {^uint32(0) - 1, ^uint32(0)}} {
		h, t2 := unpackHT(packHT(c[0], c[1]))
		if h != c[0] || t2 != c[1] {
			t.Errorf("pack/unpack(%v) = %d,%d", c, h, t2)
		}
	}
}

// Property: stealing scheduler covers every iteration exactly once under
// random sizes, granularities, and worker counts.
func TestStealingForCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := rng.Intn(4) + 1
		p := NewPool(workers)
		defer p.Close()
		total := rng.Intn(3000)
		chunk := rng.Intn(64) + 1
		hits := make([]atomic.Int32, total)
		p.StealingFor(total, chunk, func(r Range, _, _ int) {
			for i := r.Lo; i < r.Hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
