package sched

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrWatchdogKilled is the cancellation cause a Watchdog attaches when it
// hard-cancels a run that exceeded the hard wall-clock limit. Serving layers
// detect it with context.Cause and map it to a distinct status.
var ErrWatchdogKilled = errors.New("sched: run exceeded watchdog hard limit")

// Watchdog tracks in-flight runs against wall-clock limits. Runs past the
// soft limit are counted and reported (they keep running — the soft limit is
// an observability line, not an enforcement one); runs past the hard limit
// are cancelled through their context, which the pool's loop drivers honor
// at chunk granularity, so a wedged or runaway run releases its workers
// within one chunk.
//
// The zero value is not usable; NewWatchdog starts the scan goroutine. A nil
// *Watchdog is valid and tracks nothing, so callers can thread an optional
// watchdog without branching.
type Watchdog struct {
	soft, hard time.Duration

	mu   sync.Mutex
	runs map[*watchedRun]struct{}

	// slowTotal and hardKills are obs counters so a metrics registry can
	// export the very same cells Stats() reads — the two views cannot
	// disagree by construction.
	slowTotal obs.Counter
	hardKills obs.Counter

	stop     chan struct{}
	stopOnce sync.Once
}

// watchedRun is one tracked run.
type watchedRun struct {
	start  time.Time
	cancel context.CancelCauseFunc
	slow   bool
	killed bool
}

// WatchdogStats is a point-in-time summary for health endpoints.
type WatchdogStats struct {
	// Active counts currently tracked runs; Slow counts the subset past the
	// soft limit right now.
	Active int `json:"active"`
	Slow   int `json:"slow"`
	// SlowTotal counts runs that ever crossed the soft limit; HardKills
	// counts runs cancelled at the hard limit. Both are monotonic.
	SlowTotal uint64 `json:"slow_total"`
	HardKills uint64 `json:"hard_kills"`
	// The configured limits, for display (0 = disabled).
	SoftLimitMS int64 `json:"soft_limit_ms"`
	HardLimitMS int64 `json:"hard_limit_ms"`
}

// NewWatchdog starts a watchdog with the given limits. A zero soft limit
// disables slow-run counting; a zero hard limit disables hard cancellation.
// (Both zero is legal but pointless — callers normally keep a nil *Watchdog
// instead.) The scan period adapts to the tightest limit so enforcement
// latency stays a small fraction of it.
func NewWatchdog(soft, hard time.Duration) *Watchdog {
	w := &Watchdog{
		soft: soft,
		hard: hard,
		runs: make(map[*watchedRun]struct{}),
		stop: make(chan struct{}),
	}
	go w.scan()
	return w
}

// period derives the scan interval from the configured limits.
func (w *Watchdog) period() time.Duration {
	tightest := w.soft
	if tightest <= 0 || (w.hard > 0 && w.hard < tightest) {
		tightest = w.hard
	}
	p := tightest / 8
	const floor, ceil = time.Millisecond, 250 * time.Millisecond
	if p < floor {
		p = floor
	}
	if p > ceil {
		p = ceil
	}
	return p
}

// Track registers a run and returns a context the watchdog may hard-cancel,
// plus a done function the caller must invoke when the run finishes (idempotent
// use is fine via defer; it also releases the derived context's resources).
// On a nil watchdog both returns are pass-throughs.
func (w *Watchdog) Track(ctx context.Context) (context.Context, func()) {
	if w == nil {
		return ctx, func() {}
	}
	cctx, cancel := context.WithCancelCause(ctx)
	r := &watchedRun{start: time.Now(), cancel: cancel}
	w.mu.Lock()
	w.runs[r] = struct{}{}
	w.mu.Unlock()
	return cctx, func() {
		cancel(nil)
		w.mu.Lock()
		delete(w.runs, r)
		w.mu.Unlock()
	}
}

// scan is the watchdog goroutine: mark slow runs once, cancel overdue ones.
func (w *Watchdog) scan() {
	t := time.NewTicker(w.period())
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			w.mu.Lock()
			for r := range w.runs {
				el := now.Sub(r.start)
				if !r.slow && w.soft > 0 && el > w.soft {
					r.slow = true
					w.slowTotal.Inc()
				}
				if !r.killed && w.hard > 0 && el > w.hard {
					r.killed = true
					w.hardKills.Inc()
					r.cancel(ErrWatchdogKilled)
				}
			}
			w.mu.Unlock()
		}
	}
}

// Stats returns a point-in-time summary.
func (w *Watchdog) Stats() WatchdogStats {
	if w == nil {
		return WatchdogStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WatchdogStats{
		Active:      len(w.runs),
		SlowTotal:   w.slowTotal.Value(),
		HardKills:   w.hardKills.Value(),
		SoftLimitMS: w.soft.Milliseconds(),
		HardLimitMS: w.hard.Milliseconds(),
	}
	now := time.Now()
	for r := range w.runs {
		if w.soft > 0 && now.Sub(r.start) > w.soft {
			st.Slow++
		}
	}
	return st
}

// SlowTotalCounter exposes the soft-limit crossing counter for metric
// registration. Nil on a nil watchdog.
func (w *Watchdog) SlowTotalCounter() *obs.Counter {
	if w == nil {
		return nil
	}
	return &w.slowTotal
}

// HardKillsCounter exposes the hard-cancel counter for metric registration.
// Nil on a nil watchdog.
func (w *Watchdog) HardKillsCounter() *obs.Counter {
	if w == nil {
		return nil
	}
	return &w.hardKills
}

// Close stops the scan goroutine. Tracked runs keep their contexts; no
// further soft marks or hard kills happen. Idempotent.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
}
