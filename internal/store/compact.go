package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
)

// Compaction folds a graph's acknowledged mutation overlay into a fresh
// base snapshot and truncates the delta log, bounding recovery-replay time
// and overlay memory. The lifecycle is crash-consistent without any epoch
// bookkeeping because the overlay merge is replay-idempotent:
//
//  1. Materialize the current view (base ⊕ overlay through viewSeq).
//  2. Write it as the new snapshot (temp + rename; same lineage).
//  3. Publish a successor version over the new base and retire the old one
//     with reason RetireCompact. The served edge set is bit-identical.
//  4. Rotate the delta log down to the batches past viewSeq.
//
// A crash after 2 or 3 but before 4 leaves a snapshot that already contains
// operations the log still holds; reopening replays them onto it, and
// last-writer-wins replay makes that a no-op. A crash during 2 leaves the
// previous snapshot intact behind the rename.

const (
	compactAttempts    = 5
	compactBackoffBase = 10 * time.Millisecond
	compactBackoffCap  = time.Second
)

// Compact folds the named graph's mutation overlay into its snapshot now.
// A graph with an empty overlay (or one that was concurrently replaced) is
// a no-op. The store/compact failpoint injects failures here, upstream of
// any state change.
func (s *Store) Compact(name string) error {
	if err := fault.Inject("store/compact"); err != nil {
		s.compactErrors.Add(1)
		return err
	}
	h, err := s.Acquire(name)
	if err != nil {
		return err
	}
	defer h.Close()
	e := h.e
	delta := e.delta
	if delta == nil || delta.tailBatches.Load() == 0 {
		return nil
	}
	// h.src is the materialized view through e.viewSeq — by construction the
	// exact content a fresh base-plus-replay would produce, so it IS the new
	// base. Batches acknowledged after this handle was acquired stay in the
	// log for the next round.
	content := h.src
	target := e.viewSeq

	var path string
	if s.cfg.DataDir != "" {
		path = filepath.Join(s.cfg.DataDir, snapshotFileName(name, e.lineage))
		if err := writeSnapshot(path, content); err != nil {
			s.compactErrors.Add(1)
			return fmt.Errorf("store: compacting %q: %w", name, err)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.graphs[name] != e {
		// A replace, delete, or mutation published past us. The snapshot
		// write was wasted (or, for a mutation, is a valid-but-early base
		// the idempotent replay tolerates); the next trigger will fold the
		// newer state.
		s.mu.Unlock()
		return nil
	}
	oldSnapshot := e.snapshot
	ne := s.publishSuccessorLocked(e, target)
	ne.snapshot = path
	ne.vertices, ne.edges = content.NumVertices, content.NumEdges()
	s.refreshViewCountsLocked(ne)
	manifestErr := s.syncManifestLocked()
	s.mu.Unlock()

	// The successor is published even if the manifest write failed (matching
	// Add's semantics), so subscribers must hear the retirement either way.
	s.notifyRetire(name, e.version, RetireCompact)
	if manifestErr != nil {
		s.compactErrors.Add(1)
		return manifestErr
	}
	if oldSnapshot != "" && oldSnapshot != path {
		// Legacy un-qualified snapshot file superseded by the manifest
		// commit above.
		os.Remove(oldSnapshot)
	}
	if err := delta.rotate(target); err != nil {
		// The fold itself is committed; only log truncation failed. Replay
		// over the new base is idempotent, so correctness is unaffected —
		// retry the rotation on the next compaction trigger.
		s.compactErrors.Add(1)
		return fmt.Errorf("store: rotating delta log for %q: %w", name, err)
	}
	s.compactions.Add(1)
	return nil
}

// requestCompact nudges the background compactor toward name. Non-blocking:
// when the queue is full the request is dropped, which is safe because
// every trigger condition (overlay past CompactAfter, overlay at budget,
// quarantine recovery) re-fires until compaction actually runs.
func (s *Store) requestCompact(name string) {
	if s.compactCh == nil {
		return
	}
	select {
	case <-s.compactStop:
	case s.compactCh <- name:
	default:
	}
}

// compactLoop is the background compactor: one goroutine draining requests,
// retrying each failed fold with capped exponential backoff so a transient
// I/O error (or an injected store/compact fault) delays compaction instead
// of losing it. Unrecoverable conditions — the graph vanished, the store
// closed, the snapshot is quarantined — abandon the request.
func (s *Store) compactLoop() {
	defer close(s.compactDone)
	for {
		select {
		case <-s.compactStop:
			return
		case name := <-s.compactCh:
			backoff := compactBackoffBase
			for attempt := 1; ; attempt++ {
				err := s.Compact(name)
				if err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrClosed) {
					break
				}
				var ce *CorruptSnapshotError
				if errors.As(err, &ce) || attempt >= compactAttempts {
					break
				}
				select {
				case <-s.compactStop:
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > compactBackoffCap {
					backoff = compactBackoffCap
				}
			}
		}
	}
}
