package store

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
)

// evictAll forces every idle entry cold so the next Acquire rehydrates.
func evictAll(t *testing.T, s *Store) {
	t.Helper()
	s.mu.Lock()
	for _, e := range s.graphs {
		if e.refs == 0 && e.runner != nil && e.snapshot != "" {
			s.freeLocked(e)
		}
	}
	s.mu.Unlock()
}

// TestRehydrateRetriesTransientError: two injected transient failures, then
// success — Acquire must come back healthy, the retry counter must show the
// two retries, and Ready must stay nil throughout.
func TestRehydrateRetriesTransientError(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2, RehydrateBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1500, 4)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	want := pagerankSolo(t, s, "g")
	evictAll(t, s)

	disarm, err := fault.Enable("store/rehydrate", "error:transient io*2")
	if err != nil {
		t.Fatal(err)
	}
	defer disarm()
	h, err := s.Acquire("g")
	if err != nil {
		t.Fatalf("Acquire after transient faults = %v, want success via retries", err)
	}
	got := pagerank(t, h)
	h.Close()
	assertBitIdentical(t, want, got, "post-retry run")
	if st := s.Stats(); st.RehydrateRetries != 2 {
		t.Errorf("RehydrateRetries = %d, want 2", st.RehydrateRetries)
	}
	if err := s.Ready(); err != nil {
		t.Errorf("Ready = %v after successful retry, want nil", err)
	}
}

// pagerankSolo acquires, runs, closes.
func pagerankSolo(t *testing.T, s *Store, name string) []uint64 {
	t.Helper()
	h, err := s.Acquire(name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	return pagerank(t, h)
}

// TestRehydrateExhaustedReportsDegraded: persistent transient failure turns
// into a typed *RehydrateError, and enough consecutive failures flip Ready
// to degraded; a later success heals it.
func TestRehydrateExhaustedReportsDegraded(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2, RehydrateAttempts: 2, RehydrateBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(200, 900, 5)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	evictAll(t, s)

	disarm, err := fault.Enable("store/rehydrate", "error:disk on fire")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < wedgedThreshold; i++ {
		_, err := s.Acquire("g")
		var re *RehydrateError
		if !errors.As(err, &re) {
			t.Fatalf("Acquire %d = %v, want *RehydrateError", i, err)
		}
		if re.Attempts != 2 {
			t.Errorf("RehydrateError.Attempts = %d, want 2", re.Attempts)
		}
	}
	if err := s.Ready(); err == nil {
		t.Fatalf("Ready = nil after %d consecutive rehydrate failures, want degraded", wedgedThreshold)
	}
	disarm()

	// The failure was transient, not sticky: the next Acquire succeeds and
	// readiness recovers.
	h, err := s.Acquire("g")
	if err != nil {
		t.Fatalf("Acquire after disarm = %v", err)
	}
	h.Close()
	if err := s.Ready(); err != nil {
		t.Errorf("Ready = %v after recovery, want nil", err)
	}
}

// TestCorruptSnapshotQuarantinedAndHealed: a snapshot damaged on disk is
// quarantined (moved to *.quarantined, dropped from the manifest), Acquire
// returns a sticky typed error without re-reading the file, the store stays
// up, and re-Adding the graph heals it.
func TestCorruptSnapshotQuarantinedAndHealed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1500, 6)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	want := pagerankSolo(t, s, "g")
	evictAll(t, s)

	// Flip bytes in the middle of the snapshot: the header stays plausible,
	// so corruption surfaces as a truncation/validation failure.
	snap := findSnapshot(t, dir, "g")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = s.Acquire("g")
	var ce *CorruptSnapshotError
	if !errors.As(err, &ce) {
		t.Fatalf("Acquire = %v, want *CorruptSnapshotError", err)
	}
	if !errors.Is(err, graph.ErrCorrupt) {
		t.Error("CorruptSnapshotError does not match graph.ErrCorrupt")
	}
	if !strings.HasSuffix(ce.Path, QuarantineExt) {
		t.Errorf("quarantine path = %q, want %s suffix", ce.Path, QuarantineExt)
	}
	if _, err := os.Stat(ce.Path); err != nil {
		t.Errorf("quarantined bytes not preserved: %v", err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot still at original path (err=%v)", err)
	}

	// Sticky: the second Acquire fails identically (and must not panic on a
	// missing file).
	if _, err := s.Acquire("g"); !errors.As(err, &ce) {
		t.Fatalf("second Acquire = %v, want sticky *CorruptSnapshotError", err)
	}
	var info GraphInfo
	for _, gi := range s.List() {
		if gi.Name == "g" {
			info = gi
		}
	}
	if !info.Quarantined || info.Resident || info.Snapshotted {
		t.Errorf("List entry = %+v, want quarantined, cold, unsnapshotted", info)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	if err := s.Ready(); err != nil {
		t.Errorf("Ready = %v, want nil (quarantine is per-graph, not store-wide)", err)
	}

	// Re-adding the graph heals it end to end, including persistence.
	if err := s.Add("g", g); err != nil {
		t.Fatalf("healing Add = %v", err)
	}
	evictAll(t, s)
	got := pagerankSolo(t, s, "g")
	assertBitIdentical(t, want, got, "healed graph")
}

// TestSnapshotWriteFailureKeepsPreviousVersion is the acceptance-criteria
// crash test: a snapshot write that dies mid-stream (torn temp file, no
// rename) must fail the Add, keep the previous version serving, and leave
// the store reopenable with the previous version intact.
func TestSnapshotWriteFailureKeepsPreviousVersion(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g1 := gen.ErdosRenyi(300, 1500, 7)
	if err := s.Add("g", g1); err != nil {
		t.Fatal(err)
	}
	want := pagerankSolo(t, s, "g")

	disarm, err := fault.Enable("store/snapshot-write", "error:killed mid-write")
	if err != nil {
		t.Fatal(err)
	}
	g2 := gen.ErdosRenyi(400, 2000, 8)
	if err := s.Add("g", g2); err == nil {
		t.Fatal("Add with dying snapshot write returned nil error")
	}
	disarm()

	// The previous version still serves in this process...
	assertBitIdentical(t, want, pagerankSolo(t, s, "g"), "previous version after failed Add")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and across a reopen: the manifest still points at the old snapshot,
	// and the torn temp file is ignored.
	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("reopen after torn write = %v", err)
	}
	defer s2.Close()
	h, err := s2.Acquire("g")
	if err != nil {
		t.Fatalf("Acquire after reopen = %v", err)
	}
	if h.Source().NumVertices != g1.NumVertices {
		t.Errorf("reopened graph has %d vertices, want previous version's %d",
			h.Source().NumVertices, g1.NumVertices)
	}
	got := pagerank(t, h)
	h.Close()
	assertBitIdentical(t, want, got, "previous version after reopen")
}

// TestManifestWriteFailureSurfacesError: a failing manifest write errors the
// Add but the on-disk manifest keeps its previous consistent content.
func TestManifestWriteFailureSurfacesError(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add("a", gen.ErdosRenyi(100, 400, 9)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	disarm, err := fault.Enable("store/manifest-write", "error")
	if err != nil {
		t.Fatal(err)
	}
	addErr := s.Add("b", gen.ErdosRenyi(100, 400, 10))
	disarm()
	if addErr == nil {
		t.Fatal("Add with failing manifest write returned nil error")
	}
	after, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("manifest changed despite failed write")
	}
}

// TestWatchdogHardKillsRunawayQuery: a query tracked through the store's
// watchdog is cancelled at the hard limit with the watchdog cause, and the
// kill shows up in Stats.
func TestWatchdogHardKillsRunawayQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2, SoftRunLimit: 5 * time.Millisecond, HardRunLimit: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add("g", gen.RMAT(12, 60000, gen.DefaultRMAT, 11)); err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	ctx, done := s.TrackRun(context.Background())
	defer done()
	_, runErr := core.RunCtx(ctx, h.Runner(), apps.NewPageRank(h.Source()), 1<<20)
	if runErr == nil {
		t.Fatal("runaway query returned nil error")
	}
	if !errors.Is(context.Cause(ctx), sched.ErrWatchdogKilled) {
		t.Errorf("cancellation cause = %v, want sched.ErrWatchdogKilled", context.Cause(ctx))
	}
	done()
	st := s.Stats()
	if st.Watchdog == nil {
		t.Fatal("Stats.Watchdog nil with limits configured")
	}
	if st.Watchdog.HardKills != 1 {
		t.Errorf("HardKills = %d, want 1", st.Watchdog.HardKills)
	}
	if st.Watchdog.SlowTotal < 1 {
		t.Errorf("SlowTotal = %d, want >= 1", st.Watchdog.SlowTotal)
	}
}
