package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
)

// This file is the store's fault-containment surface: typed errors for the
// two ways rehydration fails (corruption vs. exhausted transient retries),
// the retry/quarantine logic itself, the optional run watchdog, and the
// readiness signal serving layers poll.

// QuarantineExt is appended to a snapshot file's name when rehydration finds
// it corrupt. The damaged bytes are preserved for post-mortem instead of
// deleted, but moved out of the manifest's namespace so they are never read
// again.
const QuarantineExt = ".quarantined"

// CorruptSnapshotError reports that a graph's snapshot failed structural
// validation and was quarantined. The graph stays registered cold: Acquire
// keeps returning this error (sticky — corruption is deterministic, retrying
// cannot help) until a new Add replaces the graph. It matches
// graph.ErrCorrupt under errors.Is.
type CorruptSnapshotError struct {
	// Name is the registered graph; Path is where the quarantined snapshot
	// now lives.
	Name string
	Path string
	// Err is the underlying decode failure.
	Err error
}

func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("store: snapshot for %q corrupt (quarantined at %s): %v", e.Name, e.Path, e.Err)
}

func (e *CorruptSnapshotError) Unwrap() error { return e.Err }

// RehydrateError reports that loading a graph's snapshot kept failing with
// transient errors after the configured retries. Unlike corruption it is not
// sticky: the next Acquire retries from scratch.
type RehydrateError struct {
	Name     string
	Attempts int
	Err      error
}

func (e *RehydrateError) Error() string {
	return fmt.Sprintf("store: rehydrating %q failed after %d attempts: %v", e.Name, e.Attempts, e.Err)
}

func (e *RehydrateError) Unwrap() error { return e.Err }

// wedgedThreshold is the consecutive-failure count at which Ready starts
// reporting the store degraded: one failed rehydrate is a blip, a streak
// means the data directory is unreadable and the instance should stop taking
// traffic.
const wedgedThreshold = 3

// rehydrate loads e's snapshot, retrying transient I/O errors with capped
// exponential backoff and quarantining the file on corruption. It holds no
// locks; the caller holds e.load. On success the store's consecutive-failure
// streak resets.
func (s *Store) rehydrate(e *entry) (*graph.Graph, error) {
	attempts := s.cfg.RehydrateAttempts
	if attempts < 1 {
		attempts = 3
	}
	backoff := s.cfg.RehydrateBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	const maxBackoff = time.Second
	var lastErr error
	for a := 1; a <= attempts; a++ {
		err := fault.Inject("store/rehydrate")
		var g *graph.Graph
		if err == nil {
			g, err = graph.ReadFile(e.snapshot)
		}
		if err == nil {
			s.mu.Lock()
			s.rehydrateStreak = 0
			s.rehydrations++
			s.mu.Unlock()
			return g, nil
		}
		if errors.Is(err, graph.ErrCorrupt) {
			return nil, s.quarantine(e, err)
		}
		lastErr = err
		if a < attempts {
			s.mu.Lock()
			s.rehydrateRetries++
			s.mu.Unlock()
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
	s.mu.Lock()
	s.rehydrateStreak++
	s.mu.Unlock()
	return nil, &RehydrateError{Name: e.name, Attempts: attempts, Err: lastErr}
}

// quarantine moves e's corrupt snapshot aside, marks the entry sticky-corrupt
// (it stays registered cold so List still shows it and Add can heal it), and
// drops it from the manifest. The caller holds e.load.
func (s *Store) quarantine(e *entry, cause error) error {
	qpath := e.snapshot + QuarantineExt
	if err := os.Rename(e.snapshot, qpath); err != nil {
		// The bytes are unreadable either way; record where they were.
		qpath = e.snapshot
	}
	ce := &CorruptSnapshotError{Name: e.name, Path: qpath, Err: cause}
	s.mu.Lock()
	e.corrupt = ce
	e.snapshot = ""
	s.quarantined++
	s.syncManifestLocked()
	s.mu.Unlock()
	return ce
}

// Ready reports whether the store can usefully serve: nil when open and
// healthy, ErrClosed after Close, or a degraded-state error while
// rehydration is wedged (wedgedThreshold consecutive exhausted-retry
// failures with no success in between). Serving layers map a non-nil result
// to an unready health check.
func (s *Store) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.rehydrateStreak >= wedgedThreshold {
		return fmt.Errorf("store: rehydration wedged (%d consecutive failures)", s.rehydrateStreak)
	}
	wedged := 0
	for _, e := range s.graphs {
		if e.delta != nil && e.delta.wedgedFlag.Load() != 0 {
			wedged++
		}
	}
	if wedged > 0 {
		return fmt.Errorf("store: %d delta log(s) wedged (writes refused pending heal)", wedged)
	}
	return nil
}

// TrackRun registers one query run with the store's watchdog: the returned
// context is hard-cancelled (cause sched.ErrWatchdogKilled) if the run
// exceeds Config.HardRunLimit, and runs past Config.SoftRunLimit are counted
// in Stats. The returned done must be called when the run finishes. Without
// configured limits both returns are pass-throughs.
func (s *Store) TrackRun(ctx context.Context) (context.Context, func()) {
	return s.watchdog.Track(ctx)
}
