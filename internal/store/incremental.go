package store

import "repro/internal/graph"

// This file is the store's contribution to incremental recompute (DESIGN.md
// §15): a bounded per-name history of recently published versions — which
// delta-log sequence each version's view extends through, and the version's
// vertex/edge counts when they are known exactly — plus DeltaBetween, which
// materializes the edge operations connecting two published versions of the
// same lineage. Serving layers use it to seed a run for version B from a
// cached result computed at version A.

// maxViewPoints bounds each name's retained history. Mutation bursts publish
// a version per durable watermark; seeds only ever reach a few versions back,
// so a short window is plenty and keeps the bookkeeping O(1) per publish.
const maxViewPoints = 32

// viewPoint is one published version of a name: the delta-log watermark its
// view extends through and its graph dimensions. countsKnown reports whether
// vertices/edges are exact content counts — true once the version has been
// materialized (or was published with a fresh base), false for a successor
// published cold, whose counts are inherited metadata.
type viewPoint struct {
	version     uint64
	viewSeq     uint64
	vertices    int
	edges       int
	countsKnown bool
}

// lineageViews is the retained history for one name, in publish order.
// Replace and delete drop it wholesale: history never crosses lineages.
type lineageViews struct {
	points []viewPoint
}

// Delta is the materialized mutation delta connecting two published versions
// of a graph, as returned by DeltaBetween. Ops are the acknowledged edge
// operations in log order (last-writer-wins per (src, dst) pair when
// applied); From* describe the older version's graph.
type Delta struct {
	// Ops transforms the older version's edge set into the newer version's
	// when applied via graph.ApplyEdgeOps. Empty means the two versions serve
	// bit-identical content (e.g. across a compaction republish).
	Ops []graph.EdgeOp
	// FromVertices/FromEdges are the older version's dimensions;
	// FromCountsKnown reports whether they are exact content counts rather
	// than inherited metadata (seed planners that compare edge counts must
	// require it).
	FromVertices    int
	FromEdges       int
	FromCountsKnown bool
}

// recordViewLocked appends e's current (version, viewSeq, counts) to its
// name's history. Callers hold s.mu.
func (s *Store) recordViewLocked(e *entry, countsKnown bool) {
	lv := s.views[e.name]
	if lv == nil {
		lv = &lineageViews{}
		s.views[e.name] = lv
	}
	lv.points = append(lv.points, viewPoint{
		version:     e.version,
		viewSeq:     e.viewSeq,
		vertices:    e.vertices,
		edges:       e.edges,
		countsKnown: countsKnown,
	})
	if len(lv.points) > maxViewPoints {
		lv.points = lv.points[len(lv.points)-maxViewPoints:]
	}
}

// resetViewsLocked starts a fresh history for e — Add (new lineage) and the
// cold registrations at Open. Callers hold s.mu.
func (s *Store) resetViewsLocked(e *entry, countsKnown bool) {
	s.views[e.name] = &lineageViews{}
	s.recordViewLocked(e, countsKnown)
}

// refreshViewCountsLocked upgrades e's history point to exact content counts
// after materialization established them. Callers hold s.mu.
func (s *Store) refreshViewCountsLocked(e *entry) {
	lv := s.views[e.name]
	if lv == nil {
		return
	}
	for i := range lv.points {
		if lv.points[i].version == e.version {
			lv.points[i].vertices = e.vertices
			lv.points[i].edges = e.edges
			lv.points[i].countsKnown = true
			return
		}
	}
}

// dropViewsLocked forgets a name's history (Delete). Callers hold s.mu.
func (s *Store) dropViewsLocked(name string) {
	delete(s.views, name)
}

// DeltaBetween returns the edge operations connecting version from to
// version to of the named graph, with the older version's dimensions. Both
// versions must be retained in the name's history (same lineage — replace
// and delete clear it), from must precede to, and the covered log range must
// still be resident (compaction's log rotation can fold the range away). It
// reports false whenever the delta cannot be recovered exactly; callers fall
// back to a full recompute, so a miss is never wrong, only slower.
func (s *Store) DeltaBetween(name string, from, to uint64) (Delta, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Delta{}, false
	}
	lv := s.views[name]
	e := s.graphs[name]
	if lv == nil || e == nil || e.delta == nil || from >= to {
		s.mu.Unlock()
		return Delta{}, false
	}
	var fp, tp *viewPoint
	for i := range lv.points {
		switch lv.points[i].version {
		case from:
			fp = &lv.points[i]
		case to:
			tp = &lv.points[i]
		}
	}
	if fp == nil || tp == nil {
		s.mu.Unlock()
		return Delta{}, false
	}
	d := Delta{
		FromVertices:    fp.vertices,
		FromEdges:       fp.edges,
		FromCountsKnown: fp.countsKnown,
	}
	fromSeq, toSeq := fp.viewSeq, tp.viewSeq
	delta := e.delta
	s.mu.Unlock()

	ops, ok := delta.opsBetween(fromSeq, toSeq)
	if !ok {
		return Delta{}, false
	}
	d.Ops = ops
	return d, true
}

// opsBetween returns a copy of the acknowledged operations for every batch
// with sequence in (fromSeq, toSeq], concatenated in order — the delta
// transforming the view at fromSeq into the view at toSeq. It reports false
// when the range is not fully resident: fromSeq predates the compacted base
// or toSeq exceeds the durable watermark.
func (l *deltaLog) opsBetween(fromSeq, toSeq uint64) ([]graph.EdgeOp, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fromSeq < l.baseSeq || toSeq > l.synced || fromSeq > toSeq {
		return nil, false
	}
	var n int
	for _, b := range l.batches {
		if b.Seq > toSeq {
			break
		}
		if b.Seq > fromSeq {
			n += len(b.Ops)
		}
	}
	ops := make([]graph.EdgeOp, 0, n)
	for _, b := range l.batches {
		if b.Seq > toSeq {
			break
		}
		if b.Seq > fromSeq {
			ops = append(ops, b.Ops...)
		}
	}
	return ops, true
}
