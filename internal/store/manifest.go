package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/graph"
)

// The snapshot layout under DataDir is one binary graph file per registered
// name plus a manifest describing them:
//
//	<data-dir>/
//	    manifest.json      {"version":1,"graphs":[{"name":...,"file":...},...]}
//	    <name>.grzg        graph.WriteFile binary format (GRZG v1)
//
// Both the manifest and each snapshot are written to a temporary file and
// renamed into place, so readers never observe a torn file; a crash mid-write
// leaves at worst a stale *.tmp alongside a consistent previous state.

const (
	manifestVersion = 1
	manifestFile    = "manifest.json"
	snapshotExt     = ".grzg"
)

// manifest is the on-disk index of persisted graphs.
type manifest struct {
	Version int             `json:"version"`
	Graphs  []manifestEntry `json:"graphs"`
}

// manifestEntry records one persisted graph. File is relative to the data
// directory; the metadata lets the store list cold graphs without opening
// their snapshots.
type manifestEntry struct {
	Name     string `json:"name"`
	File     string `json:"file"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Weighted bool   `json:"weighted"`
}

func manifestPath(dir string) string { return filepath.Join(dir, manifestFile) }

// loadManifest reads the manifest, treating a missing file as empty.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parsing %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return &m, nil
}

// syncManifestLocked rewrites the manifest to match the registry's persisted
// entries. Callers hold s.mu. A no-op without a data directory.
func (s *Store) syncManifestLocked() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	m := manifest{Version: manifestVersion}
	for _, e := range s.graphs {
		if e.snapshot == "" {
			continue
		}
		m.Graphs = append(m.Graphs, manifestEntry{
			Name:     e.name,
			File:     filepath.Base(e.snapshot),
			Vertices: e.vertices,
			Edges:    e.edges,
			Weighted: e.weighted,
		})
	}
	sort.Slice(m.Graphs, func(i, j int) bool { return m.Graphs[i].Name < m.Graphs[j].Name })
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := manifestPath(s.cfg.DataDir)
	tmp := path + ".tmp"
	if err := fault.Inject("store/manifest-write"); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeSnapshot persists g atomically (write-to-temp, rename). The
// store/snapshot-write failpoint simulates a process dying mid-stream: it
// leaves a torn temp file behind and never reaches the rename, exactly the
// on-disk state a crash produces — the previous snapshot and manifest stay
// intact.
func writeSnapshot(path string, g *graph.Graph) error {
	tmp := path + ".tmp"
	if err := fault.Inject("store/snapshot-write"); err != nil {
		os.WriteFile(tmp, []byte(`GRZG torn write`), 0o644)
		return err
	}
	if err := g.WriteFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
