package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/graph"
)

// The snapshot layout under DataDir is one binary graph file per registered
// name, an optional delta log of streaming mutations, and a manifest
// describing them:
//
//	<data-dir>/
//	    manifest.json      {"version":2,"next_lineage":N,"graphs":[...]}
//	    <name>.<L>.grzg    graph.WriteFile binary format (GRZG v1)
//	    <name>.wal         edge delta log (GRZW v1, see internal/graph)
//
// Both the manifest and each snapshot are written to a temporary file and
// renamed into place, so readers never observe a torn file; a crash mid-write
// leaves at worst a stale *.tmp alongside a consistent previous state.
//
// L is the graph's lineage: a store-wide counter minted fresh on every Add
// (never reused, persisted as next_lineage) that names one base-graph
// ancestry. The delta log's header carries the lineage it was written
// against, and snapshot filenames embed it, which is what makes whole-graph
// replacement crash-consistent alongside the WAL: a replace writes the new
// snapshot under a new lineage-qualified name and then commits by manifest
// rename, so at any crash point the manifest, the snapshot it references,
// and the lineage check in the WAL agree — a stale delta log from the
// replaced lineage is detected and discarded at open, never replayed onto
// the new base. Files the manifest no longer references are orphans from
// such crash windows; Open sweeps them.
const (
	manifestVersion = 2
	manifestFile    = "manifest.json"
	snapshotExt     = ".grzg"
)

// manifest is the on-disk index of persisted graphs.
type manifest struct {
	Version int `json:"version"`
	// NextLineage persists the lineage counter so a lineage is never reused
	// across restarts, even for deleted names.
	NextLineage uint64          `json:"next_lineage,omitempty"`
	Graphs      []manifestEntry `json:"graphs"`
}

// manifestEntry records one persisted graph. File is relative to the data
// directory; the metadata lets the store list cold graphs without opening
// their snapshots.
type manifestEntry struct {
	Name     string `json:"name"`
	File     string `json:"file"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Weighted bool   `json:"weighted"`
	// Lineage is the base-graph ancestry the snapshot (and any delta log)
	// belongs to; 0 in version-1 manifests, assigned at load.
	Lineage uint64 `json:"lineage,omitempty"`
}

func manifestPath(dir string) string { return filepath.Join(dir, manifestFile) }

// snapshotFileName is the lineage-qualified file name new snapshot writes
// use. Legacy (version-1) manifests reference plain <name>.grzg files; those
// paths keep working and migrate to the qualified form on the next rewrite.
func snapshotFileName(name string, lineage uint64) string {
	return fmt.Sprintf("%s.%d%s", name, lineage, snapshotExt)
}

// walFileName is the delta log file name for a graph.
func walFileName(name string) string { return name + walExt }

// sweepOrphansLocked removes data-directory files that belong to no
// registered graph: snapshots and delta logs stranded by a crash inside a
// replace/compact commit window, and stale *.tmp rename leftovers.
// Quarantined files (snapshot or WAL) are preserved for post-mortem.
// Callers hold s.mu; errors are ignored — orphans are garbage, not state.
func (s *Store) sweepOrphansLocked() {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return
	}
	live := make(map[string]bool, 2*len(s.graphs))
	for _, e := range s.graphs {
		if e.snapshot != "" {
			live[filepath.Base(e.snapshot)] = true
		}
		live[walFileName(e.name)] = true
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || live[name] || name == manifestFile {
			continue
		}
		switch {
		case filepath.Ext(name) == ".tmp",
			filepath.Ext(name) == snapshotExt,
			filepath.Ext(name) == walExt:
			os.Remove(filepath.Join(s.cfg.DataDir, name))
		}
	}
}

// loadManifest reads the manifest, treating a missing file as empty.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parsing %s: %w", path, err)
	}
	// Version 1 (pre-lineage) loads fine: entries carry Lineage 0 and Open
	// assigns them fresh lineages before first use.
	if m.Version != manifestVersion && m.Version != 1 {
		return nil, fmt.Errorf("store: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return &m, nil
}

// syncManifestLocked rewrites the manifest to match the registry's persisted
// entries. Callers hold s.mu. A no-op without a data directory.
func (s *Store) syncManifestLocked() error {
	if s.cfg.DataDir == "" {
		return nil
	}
	m := manifest{Version: manifestVersion, NextLineage: s.nextLineage}
	for _, e := range s.graphs {
		if e.snapshot == "" {
			continue
		}
		m.Graphs = append(m.Graphs, manifestEntry{
			Name:     e.name,
			File:     filepath.Base(e.snapshot),
			Vertices: e.vertices,
			Edges:    e.edges,
			Weighted: e.weighted,
			Lineage:  e.lineage,
		})
	}
	sort.Slice(m.Graphs, func(i, j int) bool { return m.Graphs[i].Name < m.Graphs[j].Name })
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := manifestPath(s.cfg.DataDir)
	tmp := path + ".tmp"
	if err := fault.Inject("store/manifest-write"); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeSnapshot persists g atomically (write-to-temp, rename). The
// store/snapshot-write failpoint simulates a process dying mid-stream: it
// leaves a torn temp file behind and never reaches the rename, exactly the
// on-disk state a crash produces — the previous snapshot and manifest stay
// intact.
func writeSnapshot(path string, g *graph.Graph) error {
	tmp := path + ".tmp"
	if err := fault.Inject("store/snapshot-write"); err != nil {
		os.WriteFile(tmp, []byte(`GRZG torn write`), 0o644)
		return err
	}
	if err := g.WriteFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
