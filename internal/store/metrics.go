package store

import (
	"repro/internal/obs"
	"repro/internal/sched"
)

// This file wires the store's state into an obs.Registry. The store owns the
// registry because it owns every subsystem worth measuring — the graph
// registry, the shared scheduler pool, the admission controller, and the
// watchdog — and the serving layer only adds HTTP- and run-level families on
// top. Gauges read live store state at scrape time (closures under s.mu);
// monotonic counts either read the same cells Stats() reports or, for the
// watchdog, register the watchdog's own counters, so the registry and
// /v1/stats can never disagree.

// Metrics returns the store's metric registry, for serving at /metrics and
// for layering additional families above the store.
func (s *Store) Metrics() *obs.Registry { return s.reg }

// registerMetrics populates the registry. Called once from Open, after the
// pool, admission controller, and watchdog exist.
func (s *Store) registerMetrics() {
	r := obs.NewRegistry()
	s.reg = r

	r.GaugeFunc("grazelle_store_graphs", "Registered graphs.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.graphs))
	})
	r.GaugeFunc("grazelle_store_graphs_resident", "Registered graphs currently loaded in memory.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, e := range s.graphs {
			if e.runner != nil {
				n++
			}
		}
		return float64(n)
	})
	r.GaugeFunc("grazelle_store_bytes_resident", "Resident bytes of loaded graphs.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.resident)
	})
	r.CounterFunc("grazelle_store_evictions_total", "Graphs evicted to stay under the memory budget.", nil, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.evictions
	})
	r.CounterFunc("grazelle_store_rehydrations_total", "Successful snapshot rehydrations.", nil, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.rehydrations
	})
	r.CounterFunc("grazelle_store_rehydrate_retries_total", "Transient snapshot-load retries.", nil, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.rehydrateRetries
	})
	r.CounterFunc("grazelle_store_snapshots_quarantined_total", "Snapshots moved aside as corrupt.", nil, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.quarantined
	})
	r.CounterFunc("grazelle_runs_total", "Completed engine runs.", nil, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.runs
	})

	// Streaming-mutation families: counters read the same atomic cells
	// Stats().WAL reports; gauges scan the per-graph delta-log mirrors.
	r.CounterFunc("grazelle_wal_appends_total", "Acknowledged (durable) mutation batches.", nil, s.walc.appends.Load)
	r.CounterFunc("grazelle_wal_append_errors_total", "Rejected or rolled-back mutation batches.", nil, s.walc.appendErrors.Load)
	r.CounterFunc("grazelle_wal_fsyncs_total", "Delta-log group commits.", nil, s.walc.fsyncs.Load)
	r.CounterFunc("grazelle_wal_fsync_errors_total", "Failed delta-log syncs (each rolls back its group).", nil, s.walc.fsyncErrors.Load)
	r.CounterFunc("grazelle_wal_replayed_batches_total", "Mutation batches replayed from disk at open.", nil, s.walc.replayed.Load)
	r.CounterFunc("grazelle_wal_torn_tails_total", "Torn delta-log tails truncated at open.", nil, s.walc.tornTails.Load)
	r.CounterFunc("grazelle_wal_quarantined_segments_total", "Corrupt delta-log segments moved aside.", nil, s.walc.quarantined.Load)
	r.CounterFunc("grazelle_wal_rotations_total", "Delta-log rewrites (compaction and healing).", nil, s.walc.rotations.Load)
	r.CounterFunc("grazelle_wal_healed_total", "Wedged delta logs recovered by rewrite.", nil, s.walc.healed.Load)
	r.GaugeFunc("grazelle_wal_wedged", "Graphs whose delta log is refusing writes pending heal.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, e := range s.graphs {
			if e.delta != nil && e.delta.wedgedFlag.Load() != 0 {
				n++
			}
		}
		return float64(n)
	})
	r.GaugeFunc("grazelle_wal_tail_bytes", "Acknowledged un-compacted overlay bytes across graphs.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var b int64
		for _, e := range s.graphs {
			if e.delta != nil {
				b += e.delta.tailBytes.Load()
			}
		}
		return float64(b)
	})
	r.GaugeFunc("grazelle_wal_tail_batches", "Acknowledged un-compacted mutation batches across graphs.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var n int64
		for _, e := range s.graphs {
			if e.delta != nil {
				n += e.delta.tailBatches.Load()
			}
		}
		return float64(n)
	})
	r.CounterFunc("grazelle_store_compactions_total", "Mutation overlays folded into fresh snapshots.", nil, s.compactions.Load)
	r.CounterFunc("grazelle_store_compact_errors_total", "Failed compaction attempts (retried with backoff).", nil, s.compactErrors.Load)

	r.GaugeFunc("grazelle_admission_inflight", "Admitted, unreleased queries.", nil, func() float64 {
		return float64(s.adm.InFlight())
	})
	r.GaugeFunc("grazelle_admission_queued", "Queries waiting for admission.", nil, func() float64 {
		return float64(s.adm.Queued())
	})
	r.CounterFunc("grazelle_admission_admitted_total", "Queries admitted.", nil, s.adm.Admitted)
	r.CounterFunc("grazelle_admission_rejected_total", "Queries rejected on overload.", nil, s.adm.Rejected)

	r.CounterFunc("grazelle_sched_pool_panics_total", "Job-body panics the worker pool contained.", nil, s.pool.Panics)
	s.pool.SetMetrics(&sched.PoolMetrics{
		JobWait: r.Histogram("grazelle_sched_job_wait_seconds", "Seconds a submitter blocked on the active-job cap.", nil, obs.DefTimeBuckets),
		JobExec: r.Histogram("grazelle_sched_job_exec_seconds", "Seconds from job publication to barrier completion.", nil, obs.DefTimeBuckets),
	})

	if s.watchdog != nil {
		// The watchdog's own counter cells: scan() increments, Stats() reads,
		// and the registry renders one value.
		r.RegisterCounter("grazelle_watchdog_slow_runs_total", "Runs that crossed the soft wall-clock limit.", nil, s.watchdog.SlowTotalCounter())
		r.RegisterCounter("grazelle_watchdog_hard_kills_total", "Runs hard-cancelled at the wall-clock limit.", nil, s.watchdog.HardKillsCounter())
	} else {
		// Keep the families present (at zero) so scrapes and dashboards see a
		// stable catalog whether or not a watchdog is configured.
		r.CounterFunc("grazelle_watchdog_slow_runs_total", "Runs that crossed the soft wall-clock limit.", nil, func() uint64 { return 0 })
		r.CounterFunc("grazelle_watchdog_hard_kills_total", "Runs hard-cancelled at the wall-clock limit.", nil, func() uint64 { return 0 })
	}
}
