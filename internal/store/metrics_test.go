package store

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// metricFamilies every store registry must expose, whatever the config.
// Serving dashboards key on this catalog staying stable.
var metricFamilies = []string{
	"grazelle_store_graphs",
	"grazelle_store_graphs_resident",
	"grazelle_store_bytes_resident",
	"grazelle_store_evictions_total",
	"grazelle_store_rehydrations_total",
	"grazelle_store_rehydrate_retries_total",
	"grazelle_store_snapshots_quarantined_total",
	"grazelle_runs_total",
	"grazelle_admission_inflight",
	"grazelle_admission_queued",
	"grazelle_admission_admitted_total",
	"grazelle_admission_rejected_total",
	"grazelle_sched_pool_panics_total",
	"grazelle_sched_job_wait_seconds",
	"grazelle_sched_job_exec_seconds",
	"grazelle_watchdog_slow_runs_total",
	"grazelle_watchdog_hard_kills_total",
}

func scrape(t *testing.T, s *Store) string {
	t.Helper()
	var sb strings.Builder
	if err := s.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

// metricValue extracts the sample value of an unlabeled series from
// Prometheus text output.
func metricValue(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("series %q not found in scrape:\n%s", name, text)
	return ""
}

// TestMetricsCatalogStable: every family is present, with HELP and TYPE
// lines, whether or not a watchdog is configured.
func TestMetricsCatalogStable(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"bare", Config{Workers: 2}},
		{"full", Config{Workers: 2, MaxInFlight: 4, MaxQueue: 2, SoftRunLimit: time.Minute, HardRunLimit: time.Hour}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			text := scrape(t, s)
			for _, fam := range metricFamilies {
				if !strings.Contains(text, "# HELP "+fam+" ") {
					t.Errorf("missing HELP for %s", fam)
				}
				if !strings.Contains(text, "# TYPE "+fam+" ") {
					t.Errorf("missing TYPE for %s", fam)
				}
			}
		})
	}
}

// TestMetricsTrackStoreActivity drives the store through an add, an
// eviction (the 1-byte budget evicts the idle graph right after Add), a
// rehydration, and queries, then checks the registry agrees with Stats()
// on every count they both report.
func TestMetricsTrackStoreActivity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2, MaxInFlight: 4, MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	g := gen.RMAT(8, 2000, gen.DefaultRMAT, 21)
	if err := s.Add("g1", g); err != nil {
		t.Fatal(err)
	}
	// The budget evicted the idle graph at Add; Acquire rehydrates it.
	h, err := s.Acquire("g1")
	if err != nil {
		t.Fatal(err)
	}
	pagerank(t, h)
	pagerank(t, h)
	h.Close()

	release, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()

	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected at least one eviction; test setup broken")
	}
	if st.Rehydrations == 0 {
		t.Fatal("expected at least one rehydration; test setup broken")
	}
	text := scrape(t, s)
	for name, want := range map[string]int64{
		"grazelle_store_graphs":             int64(st.Graphs),
		"grazelle_store_graphs_resident":    int64(st.Resident),
		"grazelle_store_bytes_resident":     st.BytesResident,
		"grazelle_store_evictions_total":    int64(st.Evictions),
		"grazelle_store_rehydrations_total": int64(st.Rehydrations),
		"grazelle_runs_total":               int64(st.Runs),
		"grazelle_admission_inflight":       int64(st.InFlight),
	} {
		if got := metricValue(t, text, name); got != strconv.FormatInt(want, 10) {
			t.Errorf("%s = %s, registry disagrees with Stats %d", name, got, want)
		}
	}
	if got := metricValue(t, text, "grazelle_admission_admitted_total"); got == "0" {
		t.Error("admitted_total still 0 after an explicit Admit")
	}
	// Pool histograms saw the runs' jobs.
	if got := metricValue(t, text, "grazelle_sched_job_exec_seconds_count"); got == "0" {
		t.Error("job exec histogram observed nothing across two PageRank runs")
	}
}

// TestMetricsWatchdogSharesCells: the watchdog families render the very
// counters Stats() reads, so a soft-limit crossing shows up identically in
// both — they cannot disagree.
func TestMetricsWatchdogSharesCells(t *testing.T) {
	s, err := Open(Config{Workers: 2, SoftRunLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, done := s.TrackRun(context.Background())
	// Outlive the soft limit across several watchdog scans.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if w := s.Stats().Watchdog; w != nil && w.SlowTotal > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	done()

	st := s.Stats()
	if st.Watchdog == nil || st.Watchdog.SlowTotal == 0 {
		t.Fatal("soft limit never tripped within 2s")
	}
	text := scrape(t, s)
	if got := metricValue(t, text, "grazelle_watchdog_slow_runs_total"); got != strconv.FormatUint(st.Watchdog.SlowTotal, 10) {
		t.Errorf("registry slow_runs %s != Stats %d", got, st.Watchdog.SlowTotal)
	}
	if got := metricValue(t, text, "grazelle_watchdog_hard_kills_total"); got != strconv.FormatUint(st.Watchdog.HardKills, 10) {
		t.Errorf("registry hard_kills %s != Stats %d", got, st.Watchdog.HardKills)
	}
}
