package store

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Streaming edge mutations. ApplyEdges is the write path behind
// POST /v1/graphs/{name}/edges: validate, append to the graph's delta log
// (blocking until the batch is durable), then publish a successor version
// whose view includes every acknowledged batch. Reads are never blocked by
// writes — queries keep pinning whatever version they acquired — and the
// version bump retires the predecessor, which is exactly the signal the
// query cache already invalidates on, so mutation consistency costs no new
// cache machinery.

// ErrMutationConflict reports that the graph was replaced or deleted while a
// mutation batch was in flight. The batch does not survive: the replacement
// minted a new lineage, superseding the old log.
var ErrMutationConflict = errors.New("store: graph replaced during mutation")

// DeltaBudgetError reports that a graph's un-compacted mutation overlay is
// at its byte budget: writes are refused (backpressure) until the background
// compactor folds the tail into the snapshot, while reads keep serving.
// Serving layers map it to 429 with a Retry-After.
type DeltaBudgetError struct {
	Name string
	// Pending is the overlay's current size; Budget the configured cap.
	Pending, Budget int64
}

func (e *DeltaBudgetError) Error() string {
	return fmt.Sprintf("store: mutation overlay for %q over budget (%d of %d bytes); compaction pending",
		e.Name, e.Pending, e.Budget)
}

// ApplyEdges applies one batch of edge insertions/deletions to the named
// graph. The call returns only after the batch is durable in the graph's
// delta log (group-commit fsync when a data directory is configured), with
// the log sequence number assigned to the batch and the store version whose
// view includes it.
//
// Semantics are last-writer-wins per (src, dst) pair: an insert upserts the
// pair to exactly one edge with the given weight (collapsing any duplicate
// base edges), a delete removes the pair entirely, and the final operation
// on a pair in a batch wins. Vertex IDs beyond the current vertex count
// grow the graph. On an unweighted graph, weights are ignored.
//
// Failure taxonomy: ErrNotFound (unknown name), *DeltaBudgetError (overlay
// at budget; retry after compaction), *WALWedgedError (log refusing writes
// pending heal; retry later), ErrMutationConflict (graph replaced
// mid-flight), ErrClosed. On any error the batch is not acknowledged and —
// by the log's rollback guarantee — will not resurface after a restart.
func (s *Store) ApplyEdges(name string, ops []graph.EdgeOp) (seq, version uint64, err error) {
	if err := graph.ValidateEdgeOps(ops); err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, 0, ErrClosed
	}
	e := s.graphs[name]
	if e == nil {
		s.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delta := e.delta
	if budget := s.cfg.DeltaBudget; budget > 0 {
		pending := delta.tailBytes.Load()
		if pending+int64(graph.EncodedDeltaLen(len(ops))) > budget {
			s.mu.Unlock()
			s.requestCompact(name)
			return 0, 0, &DeltaBudgetError{Name: name, Pending: pending, Budget: budget}
		}
	}
	s.mu.Unlock()

	// The append blocks for durability with no store lock held, so readers
	// and mutators of other graphs proceed; concurrent appenders to the same
	// log share fsyncs via group commit.
	seq, err = delta.append(ops)
	if err != nil {
		return 0, 0, err
	}
	acked := delta.ackedSeq()

	var retiredVersion uint64
	published := false
	s.mu.Lock()
	cur := s.graphs[name]
	if cur == nil || cur.delta != delta {
		s.mu.Unlock()
		return 0, 0, ErrMutationConflict
	}
	if cur.viewSeq < acked {
		// Publish the durable watermark as a successor version. Concurrent
		// appenders race here benignly: whoever arrives first publishes a
		// view covering every batch acknowledged so far, and later arrivals
		// find their sequence already included.
		retiredVersion = cur.version
		version = s.publishSuccessorLocked(cur, acked).version
		published = true
	} else {
		version = cur.version
	}
	tail := delta.tailBytes.Load()
	s.mu.Unlock()

	if published {
		s.notifyRetire(name, retiredVersion, RetireMutate)
	}
	if after := s.cfg.CompactAfter; after > 0 && tail >= after {
		s.requestCompact(name)
	}
	return seq, version, nil
}

// publishSuccessorLocked replaces cur with a fresh entry of the same name,
// lineage, and delta log whose view extends through viewSeq. The successor
// is published cold — materialization happens on first Acquire, so a write
// burst costs one O(overlay) merge per version actually read, not per
// batch. It captures cur's materialized graph (or inherited seed) so that
// materialization can skip the disk when a recent ancestor is in memory.
// Callers hold s.mu and must notifyRetire(cur) after unlocking.
func (s *Store) publishSuccessorLocked(cur *entry, viewSeq uint64) *entry {
	ne := &entry{
		name:     cur.name,
		vertices: cur.vertices,
		edges:    cur.edges,
		weighted: cur.weighted,
		snapshot: cur.snapshot,
		lineage:  cur.lineage,
		delta:    cur.delta,
		viewSeq:  viewSeq,
		seed:     cur.src,
	}
	if ne.seed == nil {
		ne.seed = cur.seed
	}
	s.nextVersion++
	ne.version = s.nextVersion
	s.retireLocked(cur)
	s.graphs[cur.name] = ne
	ne.lastUsed = s.tick()
	// The successor's counts are inherited metadata until it materializes;
	// Acquire and Compact upgrade the history point to exact counts.
	s.recordViewLocked(ne, false)
	return ne
}
