package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// mutOps is a deterministic mixed batch of inserts and deletes derived from
// the base graph: delete some existing edges, re-weight others, and insert
// fresh ones (including vertex growth when grow is set).
func mutOps(g *graph.Graph, round int, grow bool) []graph.EdgeOp {
	ops := make([]graph.EdgeOp, 0, 24)
	for i := 0; i < 8; i++ {
		e := g.Edges[(i*37+round*11)%len(g.Edges)]
		ops = append(ops, graph.EdgeOp{Delete: true, Src: e.Src, Dst: e.Dst})
	}
	n := uint32(g.NumVertices)
	for i := uint32(0); i < 12; i++ {
		src := (i*13 + uint32(round)*7) % n
		dst := (i*29 + uint32(round)*3 + 1) % n
		ops = append(ops, graph.EdgeOp{Src: src, Dst: dst})
	}
	if grow {
		ops = append(ops, graph.EdgeOp{Src: n + uint32(round), Dst: uint32(round) % n})
	}
	return ops
}

func mustApply(t *testing.T, s *Store, name string, ops []graph.EdgeOp) (seq, version uint64) {
	t.Helper()
	seq, version, err := s.ApplyEdges(name, ops)
	if err != nil {
		t.Fatalf("ApplyEdges: %v", err)
	}
	return seq, version
}

// TestApplyEdgesVisibleAndDurable: mutations become visible to new
// acquisitions under a bumped version, retire the predecessor with reason
// mutate, and survive a store reopen bit-identically.
func TestApplyEdgesVisibleAndDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	reasons := map[RetireReason]int{}
	s.OnRetireReason(func(_ string, _ uint64, r RetireReason) {
		mu.Lock()
		reasons[r]++
		mu.Unlock()
	})
	g := gen.ErdosRenyi(400, 2400, 3)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	v0, _ := s.Version("g")
	base := pagerankSolo(t, s, "g")

	for round := 0; round < 3; round++ {
		mustApply(t, s, "g", mutOps(g, round, true))
	}
	v1, _ := s.Version("g")
	if v1 <= v0 {
		t.Fatalf("version after mutations = %d, want > %d", v1, v0)
	}
	mu.Lock()
	if reasons[RetireMutate] == 0 {
		t.Fatal("no mutate retirements observed")
	}
	mu.Unlock()

	want := pagerankSolo(t, s, "g")
	if len(want) == len(base) {
		// The vertex set grew, so lengths differ; nothing to compare — but
		// guard against the mutations having been silently dropped.
		t.Fatalf("mutated view has %d vertices, want growth beyond %d", len(want), len(base))
	}
	var info GraphInfo
	for _, gi := range s.List() {
		if gi.Name == "g" {
			info = gi
		}
	}
	if info.DeltaBatches != 3 || info.DeltaBytes == 0 {
		t.Fatalf("List delta tail = %d batches / %d bytes, want 3 / >0", info.DeltaBatches, info.DeltaBytes)
	}
	if st := s.Stats(); st.WAL.Appends != 3 || st.WAL.TailBatches != 3 {
		t.Fatalf("Stats.WAL = %+v, want 3 appends in tail", st.WAL)
	}
	s.Close()

	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.WAL.ReplayedBatches != 3 {
		t.Fatalf("ReplayedBatches after reopen = %d, want 3", st.WAL.ReplayedBatches)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s2, "g"), "replayed view")
}

// TestApplyEdgesDeterminismMatrix: the merged overlay view is bit-identical
// at every worker and partition count — the engine sees one canonical merged
// graph, so its existing determinism carries over to overlay serving.
// ChunkVectors is pinned for the same reason as the core determinism suite:
// the default chunk size derives from the worker count, and cross-count
// bit-identity is only promised for an identical chunk layout.
func TestApplyEdgesDeterminismMatrix(t *testing.T) {
	g := gen.RMAT(9, 4000, gen.DefaultRMAT, 21)
	var want []uint64
	for _, workers := range []int{1, 2, 4} {
		for _, parts := range []int{1, 2, 4} {
			s, err := Open(Config{Workers: workers, Engine: core.Options{Partitions: parts, ChunkVectors: 8}})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Add("g", g); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 4; round++ {
				mustApply(t, s, "g", mutOps(g, round, true))
			}
			got := pagerankSolo(t, s, "g")
			s.Close()
			if want == nil {
				want = got
				continue
			}
			assertBitIdentical(t, want, got,
				fmt.Sprintf("workers=%d partitions=%d", workers, parts))
		}
	}
}

// TestConcurrentReadBurstDuringWrites: a 16-wide read burst racing active
// writers stays deterministic — every read pins some version, repeated runs
// on one handle are bit-identical, and any two reads that pinned the same
// version agree exactly.
func TestConcurrentReadBurstDuringWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1800, 9)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := s.ApplyEdges("g", mutOps(g, round, false)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	var byVersion sync.Map // version -> []uint64
	var readers sync.WaitGroup
	for r := 0; r < 16; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 3; i++ {
				h, err := s.Acquire("g")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				first := pagerank(t, h)
				second := pagerank(t, h)
				assertBitIdentical(t, first, second, "same-handle rerun")
				if prev, loaded := byVersion.LoadOrStore(h.Version(), first); loaded {
					assertBitIdentical(t, prev.([]uint64), first,
						fmt.Sprintf("version %d cross-reader", h.Version()))
				}
				h.Close()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestCompactFoldsOverlay: compaction folds the tail into the snapshot,
// retires the old version with reason compact, leaves the served bits
// unchanged, and a reopen replays nothing.
func TestCompactFoldsOverlay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var compactRetired int
	s.OnRetireReason(func(_ string, _ uint64, r RetireReason) {
		if r == RetireCompact {
			mu.Lock()
			compactRetired++
			mu.Unlock()
		}
	})
	g := gen.ErdosRenyi(400, 2400, 11)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		mustApply(t, s, "g", mutOps(g, round, true))
	}
	want := pagerankSolo(t, s, "g")

	if err := s.Compact("g"); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	mu.Lock()
	if compactRetired != 1 {
		t.Fatalf("compact retirements = %d, want 1", compactRetired)
	}
	mu.Unlock()
	st := s.Stats()
	if st.WAL.TailBatches != 0 || st.WAL.Compactions != 1 || st.WAL.Rotations == 0 {
		t.Fatalf("post-compaction WAL stats = %+v", st.WAL)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s, "g"), "post-compaction view")
	s.Close()

	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.WAL.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches after compaction, want 0", st.WAL.ReplayedBatches)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s2, "g"), "compacted reopen")
}

// TestBackgroundCompactorRetriesFailures: with the store/compact failpoint
// failing twice, the size-triggered background compactor retries with
// backoff and lands the fold without intervention.
func TestBackgroundCompactorRetriesFailures(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	defer fault.Reset()
	s, err := Open(Config{DataDir: t.TempDir(), Workers: 2, CompactAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1500, 13)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	if err := fault.EnableFromSpec("store/compact=error*2"); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g, 0, false))

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.WAL.Compactions >= 1 && st.WAL.TailBatches == 0 {
			if st.WAL.CompactErrors != 2 {
				t.Fatalf("CompactErrors = %d, want 2", st.WAL.CompactErrors)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never landed: %+v", st.WAL)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRecoveryTornTailAndFailedCompaction is the acceptance-criteria
// crash test: a torn WAL tail (crash mid-append of an unacknowledged batch)
// plus a compaction forced to fail must still reopen to a bit-identical view
// of every acknowledged batch.
func TestCrashRecoveryTornTailAndFailedCompaction(t *testing.T) {
	if !fault.Available() {
		t.Skip("failpoints compiled out")
	}
	defer fault.Reset()
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.ErdosRenyi(400, 2400, 17)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		mustApply(t, s, "g", mutOps(g, round, true))
	}
	want := pagerankSolo(t, s, "g")
	s.Close()

	// Crash simulation: a torn half-record at the log's tail, exactly what a
	// kill mid-write leaves. The torn bytes are an unacknowledged fourth
	// batch and must not surface.
	wal := dir + "/" + walFileName("g")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := graph.AppendDeltaRecord(nil, 4, []graph.EdgeOp{{Src: 1, Dst: 2}})
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen with compaction wedged: recovery must not depend on folding.
	if err := fault.EnableFromSpec("store/compact=error"); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("reopen over torn tail = %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.WAL.TornTails != 1 || st.WAL.ReplayedBatches != 3 {
		t.Fatalf("recovery stats = %+v, want 1 torn tail, 3 replayed", st.WAL)
	}
	if err := s2.Ready(); err != nil {
		t.Fatalf("Ready after recovery = %v, want nil", err)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s2, "g"), "acked view after torn-tail recovery")
	if err := s2.Compact("g"); err == nil {
		t.Fatal("Compact with failpoint armed returned nil")
	}
	// Failed compaction changes nothing served.
	assertBitIdentical(t, want, pagerankSolo(t, s2, "g"), "view after failed compaction")
}

// TestCorruptWALSegmentQuarantinedNotFatal: a flipped bit inside an
// acknowledged record quarantines the segment at reopen, keeps the legible
// prefix serving, and leaves the store ready.
func TestCorruptWALSegmentQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.ErdosRenyi(400, 2400, 19)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g, 0, false))
	prefixView := pagerankSolo(t, s, "g")
	mustApply(t, s, "g", mutOps(g, 1, false))
	s.Close()

	wal := dir + "/" + walFileName("g")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01 // damage the second (complete) record
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("reopen over corrupt WAL = %v", err)
	}
	defer s2.Close()
	if err := s2.Ready(); err != nil {
		t.Fatalf("Ready = %v, want nil (quarantine is not fatal)", err)
	}
	st := s2.Stats()
	if st.WAL.QuarantinedSegments != 1 || st.WAL.ReplayedBatches != 1 {
		t.Fatalf("recovery stats = %+v, want 1 quarantined, 1 replayed", st.WAL)
	}
	if _, err := os.Stat(wal + QuarantineExt); err != nil {
		t.Fatalf("quarantined WAL missing: %v", err)
	}
	assertBitIdentical(t, prefixView, pagerankSolo(t, s2, "g"), "legible-prefix view")
}

// TestApplyEdgesBudgetBackpressure: past DeltaBudget writes get a typed
// *DeltaBudgetError while reads keep serving; compaction reopens the gate.
func TestApplyEdgesBudgetBackpressure(t *testing.T) {
	s, err := Open(Config{DataDir: t.TempDir(), Workers: 2, DeltaBudget: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1500, 23)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g, 0, false)) // 20 ops = 276 encoded bytes
	want := pagerankSolo(t, s, "g")

	var be *DeltaBudgetError
	if _, _, err := s.ApplyEdges("g", mutOps(g, 1, false)); !errors.As(err, &be) {
		t.Fatalf("over-budget ApplyEdges = %v, want *DeltaBudgetError", err)
	}
	if be.Budget != 300 || be.Pending == 0 {
		t.Fatalf("budget error detail = %+v", be)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s, "g"), "reads during backpressure")

	if err := s.Compact("g"); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g, 1, false))
}

// TestWALWedgedRefusesWritesServesReads walks the degradation ladder: a
// wedged log refuses writes with a typed error and flips readiness, reads
// keep serving the last good version, and a successful heal restores all of
// it.
func TestWALWedgedRefusesWritesServesReads(t *testing.T) {
	s, err := Open(Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1500, 29)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g, 0, false))
	want := pagerankSolo(t, s, "g")

	s.mu.Lock()
	delta := s.graphs["g"].delta
	s.mu.Unlock()
	delta.mu.Lock()
	delta.wedged = true
	delta.wedgedFlag.Store(1)
	delta.healNotAfter = time.Now().Add(time.Hour) // pin the heal backoff
	delta.mu.Unlock()

	var we *WALWedgedError
	if _, _, err := s.ApplyEdges("g", mutOps(g, 1, false)); !errors.As(err, &we) {
		t.Fatalf("wedged ApplyEdges = %v, want *WALWedgedError", err)
	}
	if err := s.Ready(); err == nil {
		t.Fatal("Ready = nil with a wedged WAL, want degraded")
	}
	if st := s.Stats(); st.WAL.Wedged != 1 {
		t.Fatalf("Stats.WAL.Wedged = %d, want 1", st.WAL.Wedged)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s, "g"), "reads while wedged")

	delta.mu.Lock()
	delta.healNotAfter = time.Time{}
	delta.mu.Unlock()
	mustApply(t, s, "g", mutOps(g, 1, false)) // heals inline, then appends
	if err := s.Ready(); err != nil {
		t.Fatalf("Ready after heal = %v, want nil", err)
	}
	if st := s.Stats(); st.WAL.Healed != 1 || st.WAL.Wedged != 0 {
		t.Fatalf("post-heal WAL stats = %+v", st.WAL)
	}
}

// TestReplaceSupersedesMutations: Add-replace mints a new lineage — prior
// mutations neither survive in the view nor resurface across a reopen.
func TestReplaceSupersedesMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g1 := gen.ErdosRenyi(300, 1500, 31)
	g2 := gen.ErdosRenyi(300, 1700, 37)
	if err := s.Add("g", g1); err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g1, 0, true))
	if err := s.Add("g", g2); err != nil {
		t.Fatal(err)
	}
	want := pagerankSolo(t, s, "g")
	s.Close()

	ref, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Add("g", g2); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, want, pagerankSolo(t, ref, "g"), "replacement vs pristine g2")
	ref.Close()

	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.WAL.ReplayedBatches != 0 {
		t.Fatalf("stale-lineage batches replayed: %+v", st.WAL)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s2, "g"), "replacement after reopen")
}

// TestMutateMemoryOnlyStore: without a data directory the same mutation and
// compaction semantics hold, minus durability.
func TestMutateMemoryOnlyStore(t *testing.T) {
	s, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(300, 1500, 41)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		mustApply(t, s, "g", mutOps(g, round, true))
	}
	want := pagerankSolo(t, s, "g")
	if err := s.Compact("g"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WAL.TailBatches != 0 || st.WAL.Fsyncs != 0 {
		t.Fatalf("memory-only WAL stats = %+v", st.WAL)
	}
	assertBitIdentical(t, want, pagerankSolo(t, s, "g"), "memory-only post-compaction")
}

// TestOnRetireShimAndReasons: the legacy OnRetire signature keeps firing for
// every retirement while OnRetireReason distinguishes all four causes.
func TestOnRetireShimAndReasons(t *testing.T) {
	s, err := Open(Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var mu sync.Mutex
	var legacy int
	reasons := map[RetireReason]int{}
	s.OnRetire(func(name string, version uint64) {
		mu.Lock()
		legacy++
		mu.Unlock()
	})
	s.OnRetireReason(func(_ string, _ uint64, r RetireReason) {
		mu.Lock()
		reasons[r]++
		mu.Unlock()
	})

	g := gen.ErdosRenyi(200, 900, 43)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("g", g); err != nil { // replace
		t.Fatal(err)
	}
	mustApply(t, s, "g", mutOps(g, 0, false)) // mutate
	if err := s.Compact("g"); err != nil {    // compact
		t.Fatal(err)
	}
	if err := s.Delete("g"); err != nil { // delete
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, r := range []RetireReason{RetireReplace, RetireMutate, RetireCompact, RetireDelete} {
		if reasons[r] != 1 {
			t.Errorf("reason %q fired %d times, want 1", r, reasons[r])
		}
	}
	if legacy != 4 {
		t.Errorf("legacy OnRetire fired %d times, want 4", legacy)
	}
}
