package store

import (
	"sync"
	"testing"

	"repro/internal/gen"
)

// retireRecorder collects OnRetire notifications; safe for concurrent use,
// per the hook contract.
type retireRecorder struct {
	mu     sync.Mutex
	events []struct {
		name    string
		version uint64
	}
}

func (r *retireRecorder) record(name string, version uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, struct {
		name    string
		version uint64
	}{name, version})
}

func (r *retireRecorder) snapshot() []struct {
	name    string
	version uint64
} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(r.events[:0:0], r.events...)
}

// TestVersionRetirementHook: Add assigns monotonic versions, Add-replace and
// Delete fire the retirement hook with the retired (name, version), and a
// deleted name re-added later gets a fresh version (never reused).
func TestVersionRetirementHook(t *testing.T) {
	s, err := Open(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := &retireRecorder{}
	s.OnRetire(rec.record)

	g := gen.RMAT(7, 500, gen.DefaultRMAT, 1)
	if err := s.Add("a", g); err != nil {
		t.Fatal(err)
	}
	v1, err := s.Version("a")
	if err != nil || v1 == 0 {
		t.Fatalf("Version(a) = %d, %v; want nonzero version", v1, err)
	}
	if ev := rec.snapshot(); len(ev) != 0 {
		t.Fatalf("hook fired on a fresh Add: %v", ev)
	}

	// A handle pins the version it acquired.
	h, err := s.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if h.Version() != v1 {
		t.Errorf("handle version %d, want %d", h.Version(), v1)
	}

	// Replace: the old version retires, the new one is strictly larger.
	if err := s.Add("a", gen.RMAT(7, 500, gen.DefaultRMAT, 2)); err != nil {
		t.Fatal(err)
	}
	v2, _ := s.Version("a")
	if v2 <= v1 {
		t.Errorf("replace version %d, want > %d", v2, v1)
	}
	ev := rec.snapshot()
	if len(ev) != 1 || ev[0].name != "a" || ev[0].version != v1 {
		t.Fatalf("after replace hook events = %v, want [{a %d}]", ev, v1)
	}
	// The pinned handle still reports the retired version it started on.
	if h.Version() != v1 {
		t.Errorf("pinned handle version %d after replace, want %d", h.Version(), v1)
	}
	h.Close()

	// Delete retires the current version; Version then reports not-found.
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	ev = rec.snapshot()
	if len(ev) != 2 || ev[1].name != "a" || ev[1].version != v2 {
		t.Fatalf("after delete hook events = %v, want second {a %d}", ev, v2)
	}
	if _, err := s.Version("a"); err == nil {
		t.Error("Version after delete did not fail")
	}

	// Re-adding the name mints a fresh version — versions are never reused.
	if err := s.Add("a", g); err != nil {
		t.Fatal(err)
	}
	v3, _ := s.Version("a")
	if v3 <= v2 {
		t.Errorf("re-added version %d, want > %d", v3, v2)
	}
}

// TestEvictionKeepsVersion: LRU eviction to cold and the subsequent
// rehydration do not retire the version — no hook fires and Version is
// stable, so cached results keyed by (name, version) stay valid across the
// evict/rehydrate cycle without ever touching disk on their behalf.
func TestEvictionKeepsVersion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, DataDir: dir, MemBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := &retireRecorder{}
	s.OnRetire(rec.record)

	if err := s.Add("e", gen.RMAT(7, 500, gen.DefaultRMAT, 3)); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Version("e")

	// Adding a second graph blows the 1-byte budget: the idle "e" is evicted.
	if err := s.Add("f", gen.RMAT(7, 500, gen.DefaultRMAT, 4)); err != nil {
		t.Fatal(err)
	}
	var cold bool
	for _, info := range s.List() {
		if info.Name == "e" {
			cold = !info.Resident
			if info.Version != v {
				t.Errorf("List version %d after eviction, want %d", info.Version, v)
			}
		}
	}
	if !cold {
		t.Fatal("graph e still resident under a 1-byte budget")
	}
	if ev := rec.snapshot(); len(ev) != 0 {
		t.Fatalf("eviction fired the retirement hook: %v", ev)
	}
	if got, _ := s.Version("e"); got != v {
		t.Errorf("Version after eviction = %d, want %d", got, v)
	}

	// Rehydration keeps the version too.
	h, err := s.Acquire("e")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Version() != v {
		t.Errorf("rehydrated handle version %d, want %d", h.Version(), v)
	}
}
