// Package store owns named graphs end to end for the serving layer: a
// refcounted registry so a graph can be deleted or replaced while in-flight
// queries drain gracefully, versioned binary snapshot persistence under a
// data directory (rehydrated lazily on demand), per-graph memory accounting
// with a configurable byte budget and LRU eviction of idle graphs, and an
// admission controller bounding concurrent queries.
//
// The store sits between the engine (internal/core) and any serving
// front-end (cmd/grazelle serve, or the grazelle facade's Store type):
// lifecycle and capacity live here, protocol adaptation lives above, and
// kernels below. GPOP and Ligra-class frameworks treat partition/graph
// lifecycle as a framework layer rather than application code; this package
// does the same for the Grazelle reproduction.
//
// # Handle lifecycle
//
// Acquire returns a refcounted Handle pinning one version of a named graph.
// Delete and Add (replace) retire the current entry immediately — new
// Acquires no longer see it — but its memory is released only when the last
// Handle closes, so in-flight queries always finish on the exact graph they
// started with. Idle entries (refcount zero) with a snapshot on disk may be
// evicted to stay under the memory budget; they rehydrate transparently on
// the next Acquire.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numa"
	"repro/internal/obs"
	"repro/internal/sched"
)

var (
	// ErrNotFound reports that no graph is registered under the given name.
	ErrNotFound = errors.New("store: graph not found")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrOverloaded is the admission controller's rejection sentinel,
	// re-exported so callers need not import internal/sched. Admit's typed
	// *sched.OverloadedError matches it under errors.Is.
	ErrOverloaded = sched.ErrOverloaded
)

// nameRE constrains graph names to filesystem- and URL-safe tokens. The
// leading character excludes "." so path tricks ("..", hidden files) cannot
// be expressed.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether name is an acceptable graph name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Config configures a Store.
type Config struct {
	// DataDir is the snapshot directory. Empty disables persistence:
	// graphs live only in memory and cannot be evicted.
	DataDir string
	// MemBudget caps the resident bytes of loaded graphs (soft: entries
	// pinned by handles or lacking snapshots are never evicted, so the
	// budget can be exceeded transiently). 0 means unlimited.
	MemBudget int64
	// MaxInFlight bounds concurrently admitted queries; MaxQueue bounds
	// callers waiting for admission beyond that. MaxInFlight 0 disables
	// admission control. The same bound is threaded down to the shared
	// scheduler pool's job cap, so admitted work is exactly the work the
	// pool accepts.
	MaxInFlight, MaxQueue int
	// Workers sizes the shared worker pool every graph's runner executes on
	// (0 = GOMAXPROCS).
	Workers int
	// RehydrateAttempts bounds how often a transiently failing snapshot load
	// is tried before Acquire gives up with a *RehydrateError (default 3).
	// Corruption is never retried — it quarantines immediately.
	RehydrateAttempts int
	// RehydrateBackoff is the initial delay between rehydration attempts,
	// doubling per retry and capped at one second (default 10ms).
	RehydrateBackoff time.Duration
	// SoftRunLimit and HardRunLimit configure the run watchdog: queries
	// tracked via TrackRun that outlive SoftRunLimit are counted in Stats,
	// and ones past HardRunLimit are cancelled with cause
	// sched.ErrWatchdogKilled. Zero disables the respective limit; both zero
	// disables the watchdog entirely.
	SoftRunLimit, HardRunLimit time.Duration
	// DeltaBudget soft-caps the bytes of acknowledged, un-compacted edge
	// mutations a graph's delta log may hold: past it ApplyEdges refuses with
	// a *DeltaBudgetError (backpressure; reads keep serving) until compaction
	// folds the tail into the snapshot. 0 means unlimited.
	DeltaBudget int64
	// CompactAfter is the delta-tail size (bytes) at which the background
	// compactor is nudged to fold a graph's mutations into a fresh snapshot.
	// 0 disables size-triggered compaction (explicit Compact still works).
	CompactAfter int64
	// Engine supplies base engine options for every graph's runner. Pool,
	// Workers, Topology, and OnRelease are managed by the store and
	// ignored if set.
	Engine core.Options
}

// Store is a registry of named, preprocessed graphs. All methods are safe
// for concurrent use.
type Store struct {
	cfg  Config
	pool *sched.Pool
	adm  *sched.Admission
	// watchdog enforces Config's run limits; nil when both are zero.
	watchdog *sched.Watchdog

	mu        sync.Mutex
	graphs    map[string]*entry
	resident  int64
	clock     uint64
	evictions uint64
	runs      uint64
	closed    bool
	// nextVersion numbers graph versions: every Add (including a replace and
	// the cold registrations at Open), every durable mutation batch, and
	// every compaction gets the next value, so versions are unique and
	// monotonic across the whole store — a version is never reused, even
	// when a name is deleted and re-added.
	nextVersion uint64
	// nextLineage numbers base-graph ancestries (see manifest.go); persisted
	// in the manifest so a lineage is never reused across restarts.
	nextLineage uint64
	// onRetire holds the version-retirement subscribers (see OnRetireReason).
	onRetire []RetireReasonFunc
	// views retains each name's recent version history for DeltaBetween
	// (see incremental.go).
	views map[string]*lineageViews
	// rehydrateRetries counts transient rehydration retries (monotonic);
	// rehydrations counts successful snapshot loads; quarantined counts
	// snapshots moved aside as corrupt; rehydrateStreak is the current run
	// of consecutive exhausted-retry failures feeding Ready.
	rehydrateRetries uint64
	rehydrations     uint64
	quarantined      uint64
	rehydrateStreak  int

	// walc aggregates delta-log activity across all graphs (atomics; see
	// wal.go). compactions/compactErrors count snapshot folds.
	walc          walCounters
	compactions   atomic.Uint64
	compactErrors atomic.Uint64
	// compactCh feeds the background compactor; compactStop ends it and
	// compactDone confirms exit (see compact.go).
	compactCh   chan string
	compactStop chan struct{}
	compactDone chan struct{}

	// reg is the store-owned metric registry (see metrics.go); immutable
	// after Open.
	reg *obs.Registry
}

// entry is one version of a named graph. Fields below the comment are
// guarded by Store.mu; rehydration is additionally serialized by load.
type entry struct {
	name     string
	vertices int
	edges    int
	weighted bool
	snapshot string // absolute snapshot path, "" when none
	// version is the store-wide version number assigned when the entry was
	// registered. Immutable; eviction to cold and rehydration keep it. Only
	// retirement — Add-replace, Delete, a durable mutation batch, or a
	// compaction — ends it.
	version uint64
	// lineage is the base-graph ancestry (immutable; changes only via
	// Add-replace, which creates a new entry). delta is the name's shared
	// mutation log — successor entries of the same lineage share the pointer.
	lineage uint64
	delta   *deltaLog
	// viewSeq is the delta-log sequence number this entry's view includes:
	// Acquire serves the base snapshot merged with acknowledged batches
	// through viewSeq, exclusive of anything later. Immutable — a newer
	// watermark publishes a successor entry.
	viewSeq uint64
	// seed, when non-nil, is a predecessor's materialized graph captured at
	// publish time: materialization may start from it instead of the disk
	// snapshot because the overlay merge is replay-idempotent (applying the
	// view's full op range to any intermediate merge of a prefix yields
	// bit-identical edges). Cleared once materialized. Guarded by load.
	seed *graph.Graph

	// load serializes rehydration (single-flight): hold a provisional
	// refcount before locking it so the entry cannot be evicted under the
	// loader.
	load sync.Mutex

	// Guarded by Store.mu.
	refs     int
	retired  bool
	lastUsed uint64
	runs     uint64
	bytes    int64 // resident bytes (0 when cold)
	runner   *core.Runner
	src      *graph.Graph
	// corrupt is the sticky *CorruptSnapshotError set when rehydration found
	// the snapshot damaged; Acquire returns it without touching disk until a
	// new Add replaces the entry.
	corrupt error
}

// Handle pins one graph version. The runner and source pointers are
// captured at acquisition, so a Handle keeps working unchanged after the
// graph is deleted, replaced, or evicted; Close releases the pin (and, for
// retired entries, the memory once the last handle is gone). Handles are
// safe for concurrent use; Close is idempotent.
type Handle struct {
	s         *Store
	e         *entry
	runner    *core.Runner
	src       *graph.Graph
	closeOnce sync.Once
}

// Runner returns the engine runner for this graph version.
func (h *Handle) Runner() *core.Runner { return h.runner }

// Source returns the graph's edge list.
func (h *Handle) Source() *graph.Graph { return h.src }

// Name returns the graph's registered name.
func (h *Handle) Name() string { return h.e.name }

// Version returns the store-wide version number of the pinned graph. The
// value is assigned at Add time and is immutable for the entry's lifetime:
// eviction to cold and rehydration keep it, so a (name, version) pair fully
// identifies the graph bytes a query ran against.
func (h *Handle) Version() uint64 { return h.e.version }

// Close releases the handle's pin.
func (h *Handle) Close() {
	h.closeOnce.Do(func() { h.s.release(h.e) })
}

// Open creates a Store. When cfg.DataDir is set, the snapshot manifest is
// read and every persisted graph is registered cold — metadata only, loaded
// lazily on first Acquire.
func Open(cfg Config) (*Store, error) {
	s := &Store{cfg: cfg, graphs: make(map[string]*entry), views: make(map[string]*lineageViews)}
	s.pool = sched.NewPool(cfg.Workers)
	if cfg.MaxInFlight > 0 {
		s.pool.SetMaxActiveJobs(cfg.MaxInFlight)
	}
	s.adm = sched.NewAdmission(cfg.MaxInFlight, cfg.MaxQueue)
	if cfg.SoftRunLimit > 0 || cfg.HardRunLimit > 0 {
		s.watchdog = sched.NewWatchdog(cfg.SoftRunLimit, cfg.HardRunLimit)
	}
	s.registerMetrics()
	fail := func(err error) (*Store, error) {
		s.watchdog.Close()
		s.pool.Close()
		return nil, err
	}
	var needCompact []string
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return fail(err)
		}
		m, err := loadManifest(manifestPath(cfg.DataDir))
		if err != nil {
			return fail(err)
		}
		s.nextLineage = m.NextLineage
		for _, me := range m.Graphs {
			if !ValidName(me.Name) {
				return fail(fmt.Errorf("store: manifest entry has invalid name %q", me.Name))
			}
			if me.Lineage > s.nextLineage {
				s.nextLineage = me.Lineage
			}
		}
		for _, me := range m.Graphs {
			s.nextVersion++
			lineage := me.Lineage
			if lineage == 0 {
				// Version-1 manifest entry: assign a fresh lineage (no delta
				// log can exist yet, so any *.wal match is stale and the
				// lineage check below discards it).
				s.nextLineage++
				lineage = s.nextLineage
			}
			s.graphs[me.Name] = &entry{
				name:     me.Name,
				vertices: me.Vertices,
				edges:    me.Edges,
				weighted: me.Weighted,
				snapshot: filepath.Join(cfg.DataDir, me.File),
				version:  s.nextVersion,
				lineage:  lineage,
			}
		}
		// Replay each graph's delta log: acknowledged batches become the
		// entry's overlay view, torn tails are truncated, corrupt segments
		// quarantined (with the legible prefix re-logged and scheduled for
		// compaction), and stale-lineage logs discarded.
		for _, e := range s.graphs {
			l, rec, err := openDeltaLog(e.name, filepath.Join(cfg.DataDir, walFileName(e.name)), e.lineage, &s.walc)
			if err != nil {
				return fail(err)
			}
			e.delta = l
			e.viewSeq = l.ackedSeq()
			// Manifest counts describe the base snapshot; they are exact for
			// the served view only when no overlay batches replayed on top.
			s.resetViewsLocked(e, rec.Replayed == 0)
			if rec.NeedCompact {
				needCompact = append(needCompact, e.name)
			}
		}
		s.sweepOrphansLocked()
		if err := s.syncManifestLocked(); err != nil {
			return fail(err)
		}
	}
	s.compactCh = make(chan string, 64)
	s.compactStop = make(chan struct{})
	s.compactDone = make(chan struct{})
	go s.compactLoop()
	for _, name := range needCompact {
		s.requestCompact(name)
	}
	return s, nil
}

// Close marks the store closed and shuts down the shared pool. In-flight
// runs finish (their submitters execute remaining work inline); callers
// should drain queries first. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*deltaLog, 0, len(s.graphs))
	for _, e := range s.graphs {
		if e.delta != nil {
			logs = append(logs, e.delta)
		}
	}
	s.mu.Unlock()
	close(s.compactStop)
	<-s.compactDone
	for _, l := range logs {
		l.close(false)
	}
	s.watchdog.Close()
	s.pool.Close()
	return nil
}

// Admit gates one query through the admission controller, returning a
// release function to call when the query finishes. When the in-flight and
// queue bounds are exhausted it returns a typed *sched.OverloadedError
// matching ErrOverloaded; while queued it honors ctx cancellation.
func (s *Store) Admit(ctx context.Context) (release func(), err error) {
	return s.adm.Acquire(ctx)
}

// runnerOptions derives the per-graph engine options: the store's shared
// pool, default topology, and a release hook that feeds the LRU clock and
// run counters each time a run's ExecContext is recycled.
func (s *Store) runnerOptions(e *entry) core.Options {
	opt := s.cfg.Engine
	opt.Pool = s.pool
	opt.Workers = 0
	opt.Topology = numa.Topology{}
	opt.OnRelease = func() {
		s.mu.Lock()
		e.lastUsed = s.tick()
		e.runs++
		s.runs++
		s.mu.Unlock()
	}
	return opt
}

// tick advances the LRU clock. Callers hold s.mu.
func (s *Store) tick() uint64 {
	s.clock++
	return s.clock
}

// Add registers graph g under name, replacing any existing graph: the old
// entry is retired immediately (its memory is released once the last handle
// closes) and new Acquires see g. When a data directory is configured the
// graph is snapshotted before it becomes visible, so a crash never leaves
// the manifest pointing at a missing file.
//
// A replace mints a fresh lineage: the snapshot lands under a new
// lineage-qualified file name and the manifest rename is the commit point,
// after which the old lineage's snapshot and delta log are dead — removed
// here, or detected (stale lineage / orphan) and discarded at the next Open
// if a crash interrupts the cleanup. Mutations previously applied to the
// replaced graph do not carry over; the replacement supersedes them.
func (s *Store) Add(name string, g *graph.Graph) error {
	if !ValidName(name) {
		return fmt.Errorf("store: invalid graph name %q", name)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.nextLineage++
	lineage := s.nextLineage
	s.mu.Unlock()

	e := &entry{
		name:     name,
		vertices: g.NumVertices,
		edges:    g.NumEdges(),
		weighted: g.Weighted,
		lineage:  lineage,
		src:      g,
	}
	cg := core.BuildGraph(g)
	e.runner = core.NewRunner(cg, s.runnerOptions(e))
	e.bytes = cg.MemoryBytes() + g.MemoryBytes()
	var walPath string
	if s.cfg.DataDir != "" {
		path := filepath.Join(s.cfg.DataDir, snapshotFileName(name, lineage))
		if err := writeSnapshot(path, g); err != nil {
			return fmt.Errorf("store: snapshotting %q: %w", name, err)
		}
		e.snapshot = path
		walPath = filepath.Join(s.cfg.DataDir, walFileName(name))
	}
	e.delta = newDeltaLog(name, walPath, lineage, &s.walc)
	var retired *entry
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if old := s.graphs[name]; old != nil {
			s.retireLocked(old)
			retired = old
		}
		s.nextVersion++
		e.version = s.nextVersion
		s.graphs[name] = e
		s.resident += e.bytes
		e.lastUsed = s.tick()
		s.resetViewsLocked(e, true)
		s.ensureBudgetLocked()
		return s.syncManifestLocked()
	}()
	if retired != nil {
		// The commit point is behind us: the old lineage's delta log and
		// snapshot are unreachable. Remove them (a crash before this is
		// caught by the lineage check and orphan sweep at Open).
		if retired.delta != nil {
			retired.delta.close(true)
		}
		if retired.snapshot != "" && retired.snapshot != e.snapshot {
			os.Remove(retired.snapshot)
		}
		s.notifyRetire(retired.name, retired.version, RetireReplace)
	}
	return err
}

// RetireReason states why a graph version left the registry.
type RetireReason string

const (
	// RetireReplace: a new Add superseded the version (new lineage).
	RetireReplace RetireReason = "replace"
	// RetireDelete: Delete removed the name entirely.
	RetireDelete RetireReason = "delete"
	// RetireMutate: a durable edge-mutation batch advanced the name to a new
	// version whose view includes the batch.
	RetireMutate RetireReason = "mutate"
	// RetireCompact: the compactor folded the delta overlay into a fresh
	// snapshot and republished the name under a new version. The served
	// edge set is bit-identical across this transition.
	RetireCompact RetireReason = "compact"
)

// RetireFunc observes one graph version leaving the registry (see OnRetire).
type RetireFunc func(name string, version uint64)

// RetireReasonFunc additionally receives why the version retired (see
// OnRetireReason).
type RetireReasonFunc func(name string, version uint64, reason RetireReason)

// OnRetire registers fn to be called every time a graph version is retired —
// replaced by a new Add, removed by Delete, superseded by a durable mutation
// batch, or republished by compaction. Retirement means the (name, version)
// pair will never be served again (new Acquires only see newer versions), so
// any state derived from it — most importantly cached query results — can be
// dropped. Eviction to cold does not retire: the entry keeps its version
// across rehydration.
//
// fn runs synchronously on the goroutine performing the retirement, after
// the registry update, with no store locks held; it must be safe for
// concurrent use. Register subscribers before serving traffic. Subscribers
// that care why the version ended (compaction republishes identical
// content, deletion does not) should use OnRetireReason instead.
func (s *Store) OnRetire(fn RetireFunc) {
	s.OnRetireReason(func(name string, version uint64, _ RetireReason) { fn(name, version) })
}

// OnRetireReason is OnRetire with the retirement reason: replace, delete,
// mutate, or compact. Same invocation contract as OnRetire.
func (s *Store) OnRetireReason(fn RetireReasonFunc) {
	s.mu.Lock()
	s.onRetire = append(s.onRetire, fn)
	s.mu.Unlock()
}

// notifyRetire invokes the retirement subscribers without holding s.mu.
func (s *Store) notifyRetire(name string, version uint64, reason RetireReason) {
	s.mu.Lock()
	subs := s.onRetire
	s.mu.Unlock()
	for _, fn := range subs {
		fn(name, version, reason)
	}
}

// Version returns the current version number of the named graph without
// loading it: the lookup is metadata-only, so a cold (evicted) graph is not
// rehydrated. The pair (name, Version) is the cache key prefix for
// version-addressable query results.
func (s *Store) Version(name string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	e := s.graphs[name]
	if e == nil {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.version, nil
}

// Acquire returns a refcounted handle on the named graph, rehydrating it
// from its snapshot when cold. Concurrent Acquires of a cold graph load it
// once (single-flight).
func (s *Store) Acquire(name string) (*Handle, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e := s.graphs[name]
	if e == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// The provisional reference keeps the entry from being evicted or
	// freed while we (or a concurrent loader) rehydrate it.
	e.refs++
	e.lastUsed = s.tick()
	s.mu.Unlock()

	e.load.Lock()
	if e.runner == nil {
		if ce := e.corrupt; ce != nil {
			// Sticky: the snapshot was quarantined; only a new Add heals.
			e.load.Unlock()
			s.release(e)
			return nil, ce
		}
		g, err := s.materialize(e)
		if err != nil {
			e.load.Unlock()
			s.release(e)
			return nil, err
		}
		cg := core.BuildGraph(g)
		runner := core.NewRunner(cg, s.runnerOptions(e))
		bytes := cg.MemoryBytes() + g.MemoryBytes()
		s.mu.Lock()
		e.src, e.runner, e.bytes = g, runner, bytes
		e.seed = nil
		e.vertices, e.edges = g.NumVertices, g.NumEdges()
		s.refreshViewCountsLocked(e)
		s.resident += bytes
		s.ensureBudgetLocked()
		s.mu.Unlock()
	}
	h := &Handle{s: s, e: e, runner: e.runner, src: e.src}
	e.load.Unlock()
	return h, nil
}

// materialize produces e's served graph: the base — a predecessor's
// materialized view when one was captured at publish time, the disk snapshot
// otherwise — merged with the delta log's acknowledged operations through
// e.viewSeq. The merge is the single-threaded canonical graph.ApplyEdgeOps,
// so the result is a plain graph the engine preprocesses and partitions like
// any other: bit-determinism at any worker or partition count is inherited,
// not re-proven. Replay idempotence makes the two base choices equivalent —
// re-applying operations a seed already contains changes nothing. The
// caller holds e.load.
func (s *Store) materialize(e *entry) (*graph.Graph, error) {
	g := e.seed
	if g == nil {
		var err error
		if g, err = s.rehydrate(e); err != nil {
			return nil, err
		}
	}
	if e.delta != nil {
		if ops := e.delta.opsThrough(e.viewSeq); len(ops) > 0 {
			g = graph.ApplyEdgeOps(g, ops)
		}
	}
	return g, nil
}

// Delete unregisters the named graph and removes its snapshot. In-flight
// handles keep working; memory is released when the last one closes.
func (s *Store) Delete(name string) error {
	var retired *entry
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		e := s.graphs[name]
		if e == nil {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		delete(s.graphs, name)
		s.retireLocked(e)
		s.dropViewsLocked(name)
		retired = e
		if e.snapshot != "" {
			os.Remove(e.snapshot)
			e.snapshot = ""
		}
		return s.syncManifestLocked()
	}()
	if retired != nil {
		if retired.delta != nil {
			retired.delta.close(true)
		}
		s.notifyRetire(retired.name, retired.version, RetireDelete)
	}
	return err
}

// Snapshot persists the named graph's current version to the data
// directory immediately (Add already does this; Snapshot re-persists on
// demand, e.g. after a manifest repair).
func (s *Store) Snapshot(name string) error {
	if s.cfg.DataDir == "" {
		return errors.New("store: no data directory configured")
	}
	h, err := s.Acquire(name)
	if err != nil {
		return err
	}
	defer h.Close()
	path := filepath.Join(s.cfg.DataDir, snapshotFileName(name, h.e.lineage))
	if err := writeSnapshot(path, h.src); err != nil {
		return fmt.Errorf("store: snapshotting %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := s.graphs[name]; cur == h.e {
		cur.snapshot = path
	}
	return s.syncManifestLocked()
}

// retireLocked marks an entry dead to new Acquires and frees it now if
// idle. Callers hold s.mu.
func (s *Store) retireLocked(e *entry) {
	e.retired = true
	if e.refs == 0 {
		s.freeLocked(e)
	}
}

// release drops one handle reference, freeing a retired entry when the last
// reference disappears.
func (s *Store) release(e *entry) {
	s.mu.Lock()
	e.refs--
	e.lastUsed = s.tick()
	if e.retired && e.refs == 0 {
		s.freeLocked(e)
	}
	s.mu.Unlock()
}

// freeLocked drops an entry's resident state (runner, source, accounting).
// For registry entries this is eviction to cold; for retired entries it is
// the final release. Callers hold s.mu and guarantee refs == 0.
func (s *Store) freeLocked(e *entry) {
	if e.runner != nil {
		e.runner.Close()
	}
	s.resident -= e.bytes
	e.bytes = 0
	e.runner = nil
	e.src = nil
	e.seed = nil
}

// ensureBudgetLocked evicts least-recently-used idle entries until the
// resident total fits the budget. Entries pinned by handles (including the
// provisional reference an in-progress Acquire holds), already cold, or
// lacking any path back from disk are never evicted, so the budget is soft.
// Callers hold s.mu.
func (s *Store) ensureBudgetLocked() {
	if s.cfg.MemBudget <= 0 {
		return
	}
	for s.resident > s.cfg.MemBudget {
		var victim *entry
		for _, e := range s.graphs {
			if e.refs != 0 || e.runner == nil {
				continue
			}
			if e.snapshot == "" && s.cfg.DataDir == "" {
				continue // nothing to rehydrate from
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		if victim.snapshot == "" {
			// Spill to disk before dropping the only copy.
			path := filepath.Join(s.cfg.DataDir, snapshotFileName(victim.name, victim.lineage))
			if err := writeSnapshot(path, victim.src); err != nil {
				return
			}
			victim.snapshot = path
			s.syncManifestLocked()
		}
		s.freeLocked(victim)
		s.evictions++
	}
}

// GraphInfo describes one registered graph.
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Weighted bool   `json:"weighted"`
	// Version is the store-wide version number of the current entry; it
	// changes on every Add (replace) and is never reused.
	Version uint64 `json:"version"`
	// Resident reports whether the graph is loaded in memory;
	// MemoryBytes is its resident footprint (0 when cold).
	Resident    bool  `json:"resident"`
	MemoryBytes int64 `json:"memory_bytes"`
	// Snapshotted reports whether a snapshot exists on disk.
	Snapshotted bool `json:"snapshotted"`
	// Quarantined reports that the graph's snapshot was found corrupt and
	// moved aside; Acquire fails until the graph is re-added.
	Quarantined bool `json:"quarantined,omitempty"`
	// Refs counts open handles; Runs counts completed engine runs on the
	// current version.
	Refs int    `json:"refs"`
	Runs uint64 `json:"runs"`
	// DeltaBatches/DeltaBytes describe the acknowledged, un-compacted
	// mutation tail overlaid on the base snapshot; WALWedged reports that
	// the graph's delta log is refusing writes pending a heal.
	DeltaBatches int64 `json:"delta_batches,omitempty"`
	DeltaBytes   int64 `json:"delta_bytes,omitempty"`
	WALWedged    bool  `json:"wal_wedged,omitempty"`
}

// List returns every registered graph, sorted by name.
func (s *Store) List() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, e := range s.graphs {
		gi := GraphInfo{
			Name:        e.name,
			Vertices:    e.vertices,
			Edges:       e.edges,
			Weighted:    e.weighted,
			Version:     e.version,
			Resident:    e.runner != nil,
			MemoryBytes: e.bytes,
			Snapshotted: e.snapshot != "",
			Quarantined: e.corrupt != nil,
			Refs:        e.refs,
			Runs:        e.runs,
		}
		if e.delta != nil {
			gi.DeltaBatches = e.delta.tailBatches.Load()
			gi.DeltaBytes = e.delta.tailBytes.Load()
			gi.WALWedged = e.delta.wedgedFlag.Load() != 0
		}
		out = append(out, gi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats summarizes the store's load.
type Stats struct {
	// Graphs counts registered names; Resident counts those loaded in
	// memory, holding BytesResident bytes against MemBudget (0 =
	// unlimited).
	Graphs        int   `json:"graphs"`
	Resident      int   `json:"resident"`
	BytesResident int64 `json:"bytes_resident"`
	MemBudget     int64 `json:"mem_budget"`
	// InFlight and Queued are current admission occupancy against the
	// configured bounds; Rejected counts overload refusals.
	InFlight    int    `json:"in_flight"`
	Queued      int    `json:"queued"`
	MaxInFlight int    `json:"max_in_flight"`
	MaxQueue    int    `json:"max_queue"`
	Rejected    uint64 `json:"rejected"`
	// Evictions counts budget evictions; Runs counts completed engine runs.
	Evictions uint64 `json:"evictions"`
	Runs      uint64 `json:"runs"`
	// RehydrateRetries counts transient snapshot-load retries; Rehydrations
	// counts successful snapshot loads; Quarantined counts snapshots moved
	// aside as corrupt; PoolPanics counts panics the worker pool contained.
	RehydrateRetries uint64 `json:"rehydrate_retries"`
	Rehydrations     uint64 `json:"rehydrations"`
	Quarantined      uint64 `json:"quarantined"`
	PoolPanics       uint64 `json:"pool_panics"`
	// Watchdog summarizes the run watchdog (nil when disabled).
	Watchdog *sched.WatchdogStats `json:"watchdog,omitempty"`
	// WAL summarizes the streaming-mutation subsystem across all graphs.
	WAL WALStats `json:"wal"`
}

// WALStats summarizes delta-log and compaction activity. The counter cells
// are the same atomics the grazelle_wal_* metric families render, so the
// two views always agree.
type WALStats struct {
	// Appends counts acknowledged (durable) mutation batches; AppendErrors
	// counts rejected or rolled-back ones.
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	// Fsyncs counts group commits; one fsync may acknowledge many batches.
	Fsyncs      uint64 `json:"fsyncs"`
	FsyncErrors uint64 `json:"fsync_errors"`
	// ReplayedBatches counts batches recovered from disk at open; TornTails
	// and QuarantinedSegments count the repairs made along the way.
	ReplayedBatches     uint64 `json:"replayed_batches"`
	TornTails           uint64 `json:"torn_tails"`
	QuarantinedSegments uint64 `json:"quarantined_segments"`
	// Rotations counts log rewrites (compaction and healing); Healed counts
	// wedged logs recovered.
	Rotations uint64 `json:"rotations"`
	Healed    uint64 `json:"healed"`
	// Wedged counts graphs currently refusing writes; TailBytes/TailBatches
	// total the acknowledged un-compacted overlay across graphs.
	Wedged      int   `json:"wedged"`
	TailBytes   int64 `json:"tail_bytes"`
	TailBatches int64 `json:"tail_batches"`
	// Compactions counts overlay folds into fresh snapshots; CompactErrors
	// counts failed attempts (retried with backoff).
	Compactions   uint64 `json:"compactions"`
	CompactErrors uint64 `json:"compact_errors"`
}

// Stats returns a consistent snapshot of the store's load.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Graphs:        len(s.graphs),
		BytesResident: s.resident,
		MemBudget:     s.cfg.MemBudget,
		InFlight:      s.adm.InFlight(),
		Queued:        s.adm.Queued(),
		MaxInFlight:   s.adm.MaxInFlight(),
		MaxQueue:      s.adm.MaxQueue(),
		Rejected:      s.adm.Rejected(),
		Evictions:     s.evictions,
		Runs:          s.runs,

		RehydrateRetries: s.rehydrateRetries,
		Rehydrations:     s.rehydrations,
		Quarantined:      s.quarantined,
		PoolPanics:       s.pool.Panics(),
	}
	if s.watchdog != nil {
		wst := s.watchdog.Stats()
		st.Watchdog = &wst
	}
	for _, e := range s.graphs {
		if e.runner != nil {
			st.Resident++
		}
	}
	st.WAL = s.walStatsLocked()
	return st
}

// walStatsLocked assembles the WAL summary: counters from the shared cells,
// gauges by scanning each graph's delta log mirrors. Callers hold s.mu.
func (s *Store) walStatsLocked() WALStats {
	w := WALStats{
		Appends:             s.walc.appends.Load(),
		AppendErrors:        s.walc.appendErrors.Load(),
		Fsyncs:              s.walc.fsyncs.Load(),
		FsyncErrors:         s.walc.fsyncErrors.Load(),
		ReplayedBatches:     s.walc.replayed.Load(),
		TornTails:           s.walc.tornTails.Load(),
		QuarantinedSegments: s.walc.quarantined.Load(),
		Rotations:           s.walc.rotations.Load(),
		Healed:              s.walc.healed.Load(),
		Compactions:         s.compactions.Load(),
		CompactErrors:       s.compactErrors.Load(),
	}
	for _, e := range s.graphs {
		if e.delta == nil {
			continue
		}
		w.TailBytes += e.delta.tailBytes.Load()
		w.TailBatches += e.delta.tailBatches.Load()
		if e.delta.wedgedFlag.Load() != 0 {
			w.Wedged++
		}
	}
	return w
}
