package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sched"
)

const prIters = 8

// pagerank runs a fixed-iteration PageRank on a handle and returns the
// property lanes. Every engine variant is deterministic at a fixed chunk
// structure, and every handle on the same graph version shares one runner,
// so repeated calls must be bit-identical regardless of concurrency.
func pagerank(t *testing.T, h *Handle) []uint64 {
	t.Helper()
	res, err := core.RunCtx(context.Background(), h.Runner(), apps.NewPageRank(h.Source()), prIters)
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	return res.Props
}

func assertBitIdentical(t *testing.T, want, got []uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("%s: prop[%d] = %#x, want %#x", label, v, got[v], want[v])
		}
	}
}

// TestDeleteReplaceWhileQuerying is the store's acceptance test: 12
// concurrent queries keep running across a replace (Add over the same name)
// and a delete of the graph they hold handles on, finish bit-identical to a
// solo reference run, and the old version's memory is released only when the
// last handle closes.
func TestDeleteReplaceWhileQuerying(t *testing.T) {
	s, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	g1 := gen.RMAT(9, 4000, gen.DefaultRMAT, 7)
	if err := s.Add("g", g1); err != nil {
		t.Fatal(err)
	}

	// Reference: one solo run on the same runner the handles will use.
	ref, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	want := pagerank(t, ref)
	ref.Close()

	oldBytes := s.Stats().BytesResident
	if oldBytes <= 0 {
		t.Fatalf("BytesResident = %d, want > 0", oldBytes)
	}

	// Pin the current version with 12 handles before mutating the registry.
	const n = 12
	handles := make([]*Handle, n)
	for i := range handles {
		if handles[i], err = s.Acquire("g"); err != nil {
			t.Fatal(err)
		}
	}

	results := make([][]uint64, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range handles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = pagerank(t, handles[i])
		}(i)
	}
	close(start)

	// Replace the graph mid-flight, then delete the replacement too.
	g2 := gen.ErdosRenyi(200, 900, 3)
	if err := s.Add("g", g2); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("g"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i := range results {
		assertBitIdentical(t, want, results[i], "concurrent run")
	}

	// g2 was idle when deleted, so its memory is already gone, but the old
	// version is still pinned by all 12 handles.
	if got := s.Stats().BytesResident; got != oldBytes {
		t.Fatalf("BytesResident with open handles = %d, want %d", got, oldBytes)
	}
	for i := 0; i < n-1; i++ {
		handles[i].Close()
	}
	if got := s.Stats().BytesResident; got != oldBytes {
		t.Fatalf("BytesResident with one open handle = %d, want %d", got, oldBytes)
	}
	handles[n-1].Close()
	handles[n-1].Close() // Close is idempotent
	if got := s.Stats().BytesResident; got != 0 {
		t.Fatalf("BytesResident after last close = %d, want 0", got)
	}
	if _, err := s.Acquire("g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire after delete: %v, want ErrNotFound", err)
	}
}

// TestAdmissionTypedRejection drives the admission controller to its bounds
// and checks the typed overload error surfaces through the store.
func TestAdmissionTypedRejection(t *testing.T) {
	s, err := Open(Config{Workers: 2, MaxInFlight: 2, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	rel1, err := s.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}

	queued := make(chan func(), 1)
	go func() {
		rel, err := s.Admit(ctx)
		if err != nil {
			t.Error(err)
			queued <- nil
			return
		}
		queued <- rel
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("third Admit never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// In-flight full, queue full: the next caller is refused with the typed
	// error.
	_, err = s.Admit(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Admit = %v, want ErrOverloaded", err)
	}
	var oe *sched.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("Admit error %T, want *sched.OverloadedError", err)
	}
	if oe.MaxInFlight != 2 || oe.MaxQueue != 1 {
		t.Fatalf("OverloadedError = %+v, want bounds 2/1", oe)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	rel1()
	rel3 := <-queued
	if rel3 == nil {
		t.Fatal("queued Admit failed")
	}
	rel2()
	rel3()
	if st := s.Stats(); st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("drained stats = %+v, want zero occupancy", st)
	}
}

// TestSnapshotRehydrateAcrossReopen persists graphs, reopens the store from
// the same data directory, and checks queries on the rehydrated snapshots are
// bit-identical to the original run.
func TestSnapshotRehydrateAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	g := gen.RMAT(8, 2000, gen.DefaultRMAT, 11)

	s1, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Add("pr", g); err != nil {
		t.Fatal(err)
	}
	h, err := s1.Acquire("pr")
	if err != nil {
		t.Fatal(err)
	}
	want := pagerank(t, h)
	h.Close()
	s1.Close()

	if snap := findSnapshot(t, dir, "pr"); snap == "" {
		t.Fatal("snapshot file missing after Add")
	}

	s2, err := Open(Config{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	infos := s2.List()
	if len(infos) != 1 || infos[0].Name != "pr" || infos[0].Resident || !infos[0].Snapshotted {
		t.Fatalf("List after reopen = %+v, want one cold snapshotted graph", infos)
	}
	if infos[0].Vertices != g.NumVertices || infos[0].Edges != g.NumEdges() {
		t.Fatalf("cold metadata = %d/%d, want %d/%d",
			infos[0].Vertices, infos[0].Edges, g.NumVertices, g.NumEdges())
	}

	// Concurrent cold Acquires must single-flight the rehydration and all
	// land on the same runner.
	const n = 4
	hs := make([]*Handle, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs[i], errs[i] = s2.Acquire("pr")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cold Acquire %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if hs[i].Runner() != hs[0].Runner() {
			t.Fatal("concurrent cold Acquires built distinct runners")
		}
	}
	got := pagerank(t, hs[0])
	assertBitIdentical(t, want, got, "rehydrated run")
	for _, h := range hs {
		h.Close()
	}

	if err := s2.Delete("pr"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "pr"+snapshotExt)); !os.IsNotExist(err) {
		t.Fatalf("snapshot after delete: %v, want not-exist", err)
	}
	m, err := loadManifest(manifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Graphs) != 0 {
		t.Fatalf("manifest after delete has %d graphs, want 0", len(m.Graphs))
	}
}

// TestLRUEvictionUnderBudget loads two graphs under a budget that fits only
// one: the least-recently-used idle graph must be evicted to cold and
// rehydrate transparently on the next Acquire.
func TestLRUEvictionUnderBudget(t *testing.T) {
	g1 := gen.RMAT(8, 2000, gen.DefaultRMAT, 5)
	g2 := gen.RMAT(8, 2000, gen.DefaultRMAT, 6)

	// Measure one graph's resident footprint with a throwaway store.
	probe, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Add("a", g1); err != nil {
		t.Fatal(err)
	}
	one := probe.Stats().BytesResident
	probe.Close()

	s, err := Open(Config{DataDir: t.TempDir(), Workers: 2, MemBudget: one + one/2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add("a", g1); err != nil {
		t.Fatal(err)
	}
	ha, err := s.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	wantA := pagerank(t, ha)
	ha.Close()

	if err := s.Add("b", g2); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("Stats = %+v, want at least one eviction", st)
	}
	if st.BytesResident > st.MemBudget {
		t.Fatalf("BytesResident %d exceeds budget %d with evictable entries", st.BytesResident, st.MemBudget)
	}
	if st.Graphs != 2 || st.Resident != 1 {
		t.Fatalf("Stats = %+v, want 2 graphs / 1 resident", st)
	}

	// "a" went cold (it was idle and least recently used); Acquire brings it
	// back with identical results.
	ha, err = s.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer ha.Close()
	assertBitIdentical(t, wantA, pagerank(t, ha), "post-eviction run")
}

// TestPinnedEntriesSurviveBudget checks entries with open handles are never
// evicted even when over budget.
func TestPinnedEntriesSurviveBudget(t *testing.T) {
	g1 := gen.ErdosRenyi(300, 1500, 1)
	g2 := gen.ErdosRenyi(300, 1500, 2)
	s, err := Open(Config{DataDir: t.TempDir(), Workers: 2, MemBudget: 1}) // absurdly small
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add("a", g1); err != nil {
		t.Fatal(err)
	}
	ha, err := s.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add("b", g2); err != nil {
		t.Fatal(err)
	}
	// "b" is idle, so it was evicted immediately; "a" is pinned and stays.
	for _, info := range s.List() {
		switch info.Name {
		case "a":
			if !info.Resident {
				t.Fatal("pinned graph was evicted")
			}
		case "b":
			if info.Resident {
				t.Fatal("idle graph survived a 1-byte budget")
			}
		}
	}
	assertBitIdentical(t, pagerank(t, ha), pagerank(t, ha), "pinned runs")
	ha.Close()
}

// TestNameValidation rejects path-hostile names before they reach the
// filesystem.
func TestNameValidation(t *testing.T) {
	s, err := Open(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.ErdosRenyi(10, 20, 1)
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a b", "a\x00b", "../etc"} {
		if err := s.Add(bad, g); err == nil {
			t.Errorf("Add(%q) accepted, want error", bad)
		}
	}
	for _, good := range []string{"a", "web-2026.05", "A_b.c-d", "0"} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false, want true", good)
		}
	}
}

// TestClosedStore checks every entry point fails cleanly after Close.
func TestClosedStore(t *testing.T) {
	s, err := Open(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.ErdosRenyi(10, 20, 1)
	if err := s.Add("g", g); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Add("h", g); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after close: %v, want ErrClosed", err)
	}
	if _, err := s.Acquire("g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after close: %v, want ErrClosed", err)
	}
	if err := s.Delete("g"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after close: %v, want ErrClosed", err)
	}
}
