package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
)

// This file owns the per-graph edge delta log: the write-ahead log file
// under the data directory (format: internal/graph delta codec) plus the
// in-memory tail of acknowledged, not-yet-compacted batches that the
// overlay view is materialized from. The log guarantees exactly the WAL
// contract: a batch is acknowledged only after its record is durable
// (written and fsynced), an unacknowledged batch never survives a crash
// (failed syncs roll the file back before the error is returned), and
// reopening replays acknowledged batches in order — truncating a torn tail,
// quarantining a segment damaged beyond what truncation explains.
//
// Concurrency follows the group-commit pattern: appenders serialize record
// writes under l.mu, then one of them becomes the sync leader and fsyncs
// with the lock released, covering every record written before the sync
// started. Batches appended while an fsync is in flight ride the next sync.
// One fsync therefore acknowledges a whole burst of concurrent writers.

// walExt is the delta log file suffix, alongside <name+lineage>.grzg
// snapshots in the data directory.
const walExt = ".wal"

// walCounters aggregates delta-log activity across every graph in a store.
// All fields are atomic: the log mutates them under its own lock, metrics
// and Stats read them lock-free.
type walCounters struct {
	appends      atomic.Uint64 // acknowledged batches
	appendErrors atomic.Uint64 // rejected or rolled-back appends
	fsyncs       atomic.Uint64 // successful group commits
	fsyncErrors  atomic.Uint64 // failed syncs (each rolls back its group)
	replayed     atomic.Uint64 // batches replayed from disk at open
	tornTails    atomic.Uint64 // torn tails truncated at open
	quarantined  atomic.Uint64 // corrupt segments moved aside
	rotations    atomic.Uint64 // log rewrites (compaction, healing)
	healed       atomic.Uint64 // wedged logs recovered by rewrite
}

// deltaLog is one graph's mutation log. path == "" is the memory-only mode
// used when the store has no data directory: identical semantics minus
// durability (appends acknowledge immediately).
type deltaLog struct {
	name    string
	path    string
	lineage uint64
	c       *walCounters

	// tailBytes/tailBatches/wedgedFlag mirror guarded state for lock-free
	// gauges: encoded bytes and count of acknowledged un-compacted batches,
	// and whether the log is wedged (1) or healthy (0).
	tailBytes   atomic.Int64
	tailBatches atomic.Int64
	wedgedFlag  atomic.Int32

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	// baseSeq is the last sequence number folded into the base snapshot;
	// seq the last written; synced the last durable. size/syncedSize are the
	// file lengths covering seq/synced respectively.
	baseSeq, seq, synced uint64
	size, syncedSize     int64
	syncing              bool
	// batches is the un-compacted tail in sequence order: everything in
	// (baseSeq, seq]. Entries above synced are written but not yet durable
	// and are dropped if their group's sync fails.
	batches []graph.DeltaBatch
	// wedged is set when even rolling back a failed sync failed: the file
	// state is unknown and every append is refused until a heal (full
	// rewrite from the acknowledged tail) succeeds. healAttempts backs off
	// heal retries exponentially, capped at healBackoffCap.
	wedged       bool
	healAttempts int
	healNotAfter time.Time
	closed       bool
}

const (
	healBackoffBase = 10 * time.Millisecond
	healBackoffCap  = time.Second
)

// WALWedgedError reports that a graph's delta log is wedged: a sync failed
// and the rollback failed too, so the file cannot be trusted until a heal
// rewrite succeeds. Writes are refused while wedged; reads keep serving the
// last acknowledged state.
type WALWedgedError struct {
	Name string
	Err  error
}

func (e *WALWedgedError) Error() string {
	return fmt.Sprintf("store: delta log for %q wedged: %v", e.Name, e.Err)
}

func (e *WALWedgedError) Unwrap() error { return e.Err }

// newDeltaLog creates the in-memory state for a graph with no existing log.
func newDeltaLog(name, path string, lineage uint64, c *walCounters) *deltaLog {
	l := &deltaLog{name: name, path: path, lineage: lineage, c: c}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// walRecovery describes what openDeltaLog found on disk, so the store can
// count it and schedule repair work (a quarantined segment leaves the
// surviving prefix durable only via the quarantine file — compacting it
// into the snapshot restores normal durability).
type walRecovery struct {
	Replayed    int
	TornTail    bool
	Quarantined bool
	// NeedCompact is set when the surviving tail should be folded into the
	// snapshot promptly (quarantine recovery).
	NeedCompact bool
}

// openDeltaLog opens (or concludes the absence of) the delta log for name,
// replaying acknowledged batches. A torn tail is truncated in place; a
// corrupt segment is renamed aside with QuarantineExt and the legible
// prefix re-logged into a fresh file; a log whose lineage does not match
// the manifest's is a stale leftover from before a whole-graph replace and
// is removed unread.
func openDeltaLog(name, path string, lineage uint64, c *walCounters) (*deltaLog, walRecovery, error) {
	l := newDeltaLog(name, path, lineage, c)
	var rec walRecovery
	if path == "" {
		return l, rec, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return l, rec, nil
	}
	if err != nil {
		return nil, rec, fmt.Errorf("store: reading delta log for %q: %w", name, err)
	}
	if len(data) == 0 {
		// Created but never written: indistinguishable from absent.
		return l, rec, nil
	}
	log, decErr := graph.DecodeDeltaLog(data)
	if decErr == nil && log.Lineage != lineage {
		// Stale log from a previous base lineage (crash between a replace's
		// manifest commit and its log cleanup). Its deltas were superseded
		// by the replace; discard.
		os.Remove(path)
		return l, rec, nil
	}
	switch {
	case decErr == nil:
	case errors.Is(decErr, graph.ErrTornTail):
		if err := os.Truncate(path, int64(log.GoodLen)); err != nil {
			return nil, rec, fmt.Errorf("store: truncating torn delta log for %q: %w", name, err)
		}
		rec.TornTail = true
		c.tornTails.Add(1)
	case errors.Is(decErr, graph.ErrCorrupt):
		// Preserve the damaged bytes for post-mortem and re-log the legible
		// prefix so it stays durable without the quarantined file.
		qpath := path + QuarantineExt
		if err := os.Rename(path, qpath); err != nil {
			return nil, rec, fmt.Errorf("store: quarantining delta log for %q: %w", name, err)
		}
		rec.Quarantined = true
		rec.NeedCompact = true
		c.quarantined.Add(1)
	default:
		return nil, rec, decErr
	}
	l.adoptLocked(log.BaseSeq, log.Batches)
	rec.Replayed = len(log.Batches)
	c.replayed.Add(uint64(len(log.Batches)))
	if rec.Quarantined && len(log.Batches) > 0 {
		// Rewrite the surviving prefix into a fresh log immediately.
		if err := l.rotate(log.BaseSeq); err != nil {
			return nil, rec, fmt.Errorf("store: re-logging after quarantine for %q: %w", name, err)
		}
	}
	return l, rec, nil
}

// adoptLocked installs replayed state. Only called before the log is shared.
func (l *deltaLog) adoptLocked(baseSeq uint64, batches []graph.DeltaBatch) {
	l.baseSeq = baseSeq
	l.seq = baseSeq
	var bytes int64
	for _, b := range batches {
		l.seq = b.Seq
		bytes += int64(graph.EncodedDeltaLen(len(b.Ops)))
	}
	l.synced = l.seq
	l.batches = batches
	l.size = int64(graph.DeltaHeaderLen) + bytes
	l.syncedSize = l.size
	l.tailBytes.Store(bytes)
	l.tailBatches.Store(int64(len(batches)))
}

// ensureOpenLocked opens (creating with a header if necessary) the log file.
func (l *deltaLog) ensureOpenLocked() error {
	if l.f != nil || l.path == "" {
		return nil
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		hdr := graph.EncodeDeltaHeader(l.lineage, l.baseSeq)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			f.Close()
			return err
		}
		l.size = int64(len(hdr))
		l.syncedSize = l.size
	}
	l.f = f
	return nil
}

// ackedSeq returns the highest acknowledged sequence number.
func (l *deltaLog) ackedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// opsThrough returns a copy of the acknowledged operations for every batch
// with sequence ≤ seq, concatenated in order — the input to the canonical
// overlay merge.
func (l *deltaLog) opsThrough(seq uint64) []graph.EdgeOp {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int
	for _, b := range l.batches {
		if b.Seq > seq || b.Seq > l.synced {
			break
		}
		n += len(b.Ops)
	}
	ops := make([]graph.EdgeOp, 0, n)
	for _, b := range l.batches {
		if b.Seq > seq || b.Seq > l.synced {
			break
		}
		ops = append(ops, b.Ops...)
	}
	return ops
}

// append logs one batch and blocks until it is durable (or the log has no
// file, in which case acknowledgement is immediate). It returns the batch's
// sequence number. On a failed sync the file is rolled back to the last
// durable length so the unacknowledged record cannot survive a crash; if
// even the rollback fails the log wedges.
func (l *deltaLog) append(ops []graph.EdgeOp) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedged {
		if err := l.healLocked(); err != nil {
			l.c.appendErrors.Add(1)
			return 0, err
		}
	}
	if err := fault.Inject("store/wal-append"); err != nil {
		l.c.appendErrors.Add(1)
		return 0, err
	}
	if err := l.ensureOpenLocked(); err != nil {
		l.c.appendErrors.Add(1)
		return 0, err
	}
	seq := l.seq + 1
	rec := graph.AppendDeltaRecord(nil, seq, ops)
	if l.f != nil {
		if _, err := l.f.WriteAt(rec, l.size); err != nil {
			l.rollbackLocked(err)
			l.c.appendErrors.Add(1)
			return 0, err
		}
	}
	l.seq = seq
	l.size += int64(len(rec))
	l.batches = append(l.batches, graph.DeltaBatch{Seq: seq, Ops: ops})

	if l.f == nil {
		// Memory-only: acknowledged by definition.
		l.synced = seq
		l.syncedSize = l.size
		l.publishTailLocked()
		l.c.appends.Add(1)
		return seq, nil
	}

	// Group commit: wait until a sync covers this record, becoming the
	// leader if no sync is in flight. The leader releases the lock around
	// the fsync so concurrent appenders keep writing records that the next
	// sync will cover.
	for l.synced < seq {
		if l.seq < seq {
			// A failed sync rolled this record back; it was never
			// acknowledged and is no longer in the file.
			l.c.appendErrors.Add(1)
			if l.wedged {
				return 0, &WALWedgedError{Name: l.name, Err: errors.New("sync failed and rollback failed")}
			}
			return 0, fmt.Errorf("store: delta append for %q lost to a failed sync", l.name)
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		mark, markSize := l.seq, l.size
		f := l.f
		l.mu.Unlock()
		err := fault.Inject("store/wal-fsync")
		if err == nil {
			err = f.Sync()
		}
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.c.fsyncErrors.Add(1)
			l.rollbackLocked(err)
		} else {
			l.c.fsyncs.Add(1)
			l.synced = mark
			l.syncedSize = markSize
			l.publishTailLocked()
		}
		l.cond.Broadcast()
	}
	l.c.appends.Add(1)
	return seq, nil
}

// rollbackLocked discards every record above the durable watermark after a
// failed write or sync: the file is truncated back to the acknowledged
// length and the in-memory tail trimmed to match, so an unacknowledged
// batch can neither be served nor replayed. If the truncate fails the file
// state is unknowable and the log wedges.
func (l *deltaLog) rollbackLocked(cause error) {
	if l.f != nil {
		if err := os.Truncate(l.path, l.syncedSize); err != nil {
			l.wedged = true
			l.wedgedFlag.Store(1)
			l.healAttempts = 0
			l.healNotAfter = time.Time{}
			_ = cause
		}
	}
	for len(l.batches) > 0 && l.batches[len(l.batches)-1].Seq > l.synced {
		l.batches = l.batches[:len(l.batches)-1]
	}
	l.seq = l.synced
	l.size = l.syncedSize
	l.publishTailLocked()
}

// healLocked attempts to recover a wedged log by rewriting it wholesale
// from the acknowledged tail, with exponential backoff between attempts.
func (l *deltaLog) healLocked() error {
	if time.Now().Before(l.healNotAfter) {
		return &WALWedgedError{Name: l.name, Err: errors.New("heal backing off")}
	}
	if err := l.rewriteLocked(l.baseSeq); err != nil {
		backoff := healBackoffBase << l.healAttempts
		if backoff > healBackoffCap {
			backoff = healBackoffCap
		}
		l.healAttempts++
		l.healNotAfter = time.Now().Add(backoff)
		return &WALWedgedError{Name: l.name, Err: err}
	}
	l.wedged = false
	l.wedgedFlag.Store(0)
	l.healAttempts = 0
	l.healNotAfter = time.Time{}
	l.c.healed.Add(1)
	return nil
}

// rotate rewrites the log to contain only batches above newBaseSeq — the
// compaction step that drops everything already folded into the snapshot.
// Batches written but not yet durable ride along into the new file, whose
// fsync acknowledges them.
func (l *deltaLog) rotate(newBaseSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if err := l.rewriteLocked(newBaseSeq); err != nil {
		return err
	}
	if l.wedged {
		l.wedged = false
		l.wedgedFlag.Store(0)
		l.c.healed.Add(1)
	}
	l.cond.Broadcast()
	return nil
}

// rewriteLocked atomically replaces the log file with a fresh one holding
// every batch above newBaseSeq, then syncs and swaps file handles. The old
// file is intact until the rename, so a failure leaves the previous state.
func (l *deltaLog) rewriteLocked(newBaseSeq uint64) error {
	keep := l.batches[:0:0]
	for _, b := range l.batches {
		if b.Seq > newBaseSeq {
			keep = append(keep, b)
		}
	}
	if l.path == "" {
		l.baseSeq = newBaseSeq
		l.batches = keep
		l.publishTailLocked()
		l.c.rotations.Add(1)
		return nil
	}
	buf := graph.EncodeDeltaHeader(l.lineage, newBaseSeq)
	for _, b := range keep {
		buf = graph.AppendDeltaRecord(buf, b.Seq, b.Ops)
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.baseSeq = newBaseSeq
	l.batches = keep
	l.size = int64(len(buf))
	l.syncedSize = l.size
	l.seq = newBaseSeq
	for _, b := range keep {
		l.seq = b.Seq
	}
	l.synced = l.seq
	l.publishTailLocked()
	l.c.rotations.Add(1)
	return nil
}

// publishTailLocked refreshes the lock-free gauge mirrors of the
// acknowledged tail.
func (l *deltaLog) publishTailLocked() {
	var bytes int64
	var n int64
	for _, b := range l.batches {
		if b.Seq > l.synced {
			break
		}
		bytes += int64(graph.EncodedDeltaLen(len(b.Ops)))
		n++
	}
	l.tailBytes.Store(bytes)
	l.tailBatches.Store(n)
}

// close releases the file handle; with remove set the log file (and any
// quarantined sibling) is deleted — the Delete path.
func (l *deltaLog) close(remove bool) {
	l.mu.Lock()
	for l.syncing {
		l.cond.Wait()
	}
	l.closed = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.mu.Unlock()
	if remove && l.path != "" {
		os.Remove(l.path)
	}
	l.cond.Broadcast()
}
