package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "g"+walExt)
}

// findSnapshot locates name's snapshot file in dir — lineage-qualified
// (name.<L>.grzg) or legacy (name.grzg) — returning "" when absent.
func findSnapshot(t *testing.T, dir, name string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, name+".*"+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) > 1 {
		t.Fatalf("multiple snapshots for %q: %v", name, matches)
	}
	if len(matches) == 1 {
		return matches[0]
	}
	legacy := filepath.Join(dir, name+snapshotExt)
	if _, err := os.Stat(legacy); err == nil {
		return legacy
	}
	return ""
}

func mustAppend(t *testing.T, l *deltaLog, ops ...graph.EdgeOp) uint64 {
	t.Helper()
	seq, err := l.append(ops)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return seq
}

func TestDeltaLogAppendReopen(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, rec, err := openDeltaLog("g", path, 7, &c)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 0 || rec.TornTail || rec.Quarantined {
		t.Fatalf("fresh open recovery = %+v", rec)
	}
	mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1})
	mustAppend(t, l, graph.EdgeOp{Src: 1, Dst: 2}, graph.EdgeOp{Delete: true, Src: 0, Dst: 1})
	if got := l.ackedSeq(); got != 2 {
		t.Fatalf("ackedSeq = %d, want 2", got)
	}
	l.close(false)

	l2, rec2, err := openDeltaLog("g", path, 7, &c)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Replayed != 2 {
		t.Fatalf("replayed %d batches, want 2", rec2.Replayed)
	}
	ops := l2.opsThrough(2)
	if len(ops) != 3 {
		t.Fatalf("opsThrough(2) = %d ops, want 3", len(ops))
	}
	if ops[2].Delete != true || ops[2].Src != 0 || ops[2].Dst != 1 {
		t.Fatalf("last replayed op = %+v", ops[2])
	}
	if got := l2.opsThrough(1); len(got) != 1 {
		t.Fatalf("opsThrough(1) = %d ops, want 1", len(got))
	}
	l2.close(false)
}

func TestDeltaLogGroupCommitConcurrent(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustAppend(t, l, graph.EdgeOp{Src: uint32(i), Dst: uint32(i + 1)})
		}(i)
	}
	wg.Wait()
	if got := l.ackedSeq(); got != writers {
		t.Fatalf("ackedSeq = %d, want %d", got, writers)
	}
	if got := c.appends.Load(); got != writers {
		t.Fatalf("appends = %d, want %d", got, writers)
	}
	// Group commit should have covered multiple records per fsync at least
	// occasionally, and never more syncs than appends.
	if syncs := c.fsyncs.Load(); syncs == 0 || syncs > writers {
		t.Fatalf("fsyncs = %d for %d appends", syncs, writers)
	}
	l.close(false)

	l2, rec, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != writers {
		t.Fatalf("replayed %d, want %d", rec.Replayed, writers)
	}
	l2.close(false)
}

func TestDeltaLogFsyncFailureRollsBack(t *testing.T) {
	defer fault.Reset()
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1})
	durable, _ := os.Stat(path)

	if err := fault.EnableFromSpec("store/wal-fsync=error*1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.append([]graph.EdgeOp{{Src: 9, Dst: 9}}); err == nil {
		t.Fatal("append succeeded through a failed fsync")
	}
	// The rejected record must be gone from both the file and the tail.
	st, _ := os.Stat(path)
	if st.Size() != durable.Size() {
		t.Fatalf("file = %d bytes after rollback, want %d", st.Size(), durable.Size())
	}
	if ops := l.opsThrough(^uint64(0)); len(ops) != 1 {
		t.Fatalf("tail = %d ops after rollback, want 1", len(ops))
	}
	if c.fsyncErrors.Load() != 1 || c.appendErrors.Load() != 1 {
		t.Fatalf("counters = %d fsyncErrors, %d appendErrors", c.fsyncErrors.Load(), c.appendErrors.Load())
	}

	// The log stays usable: the next append reuses the rolled-back seq.
	if seq := mustAppend(t, l, graph.EdgeOp{Src: 2, Dst: 3}); seq != 2 {
		t.Fatalf("post-rollback seq = %d, want 2", seq)
	}
	l.close(false)

	l2, rec, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d, want 2", rec.Replayed)
	}
	ops := l2.opsThrough(^uint64(0))
	if len(ops) != 2 || ops[1].Src != 2 {
		t.Fatalf("replayed ops = %+v: unacknowledged batch leaked or acked batch lost", ops)
	}
	l2.close(false)
}

func TestDeltaLogTornTailTruncatedOnOpen(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1})
	mustAppend(t, l, graph.EdgeOp{Src: 1, Dst: 2})
	l.close(false)

	// Tear mid-way through the second record, as a crash mid-write would.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail || rec.Replayed != 1 {
		t.Fatalf("recovery = %+v, want torn tail with 1 replayed", rec)
	}
	if got := c.tornTails.Load(); got != 1 {
		t.Fatalf("tornTails counter = %d", got)
	}
	// The file was truncated in place: appending must produce a clean log.
	if seq := mustAppend(t, l2, graph.EdgeOp{Src: 5, Dst: 6}); seq != 2 {
		t.Fatalf("post-truncation seq = %d, want 2", seq)
	}
	l2.close(false)
	if _, rec, err := openDeltaLog("g", path, 1, &c); err != nil || rec.Replayed != 2 {
		t.Fatalf("reopen after repair: %v, %+v", err, rec)
	}
}

func TestDeltaLogCorruptSegmentQuarantined(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1})
	mustAppend(t, l, graph.EdgeOp{Src: 1, Dst: 2})
	l.close(false)

	// Flip a payload bit inside the second record: CRC mismatch on a
	// complete record is corruption, not a torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatalf("corrupt log must not be fatal: %v", err)
	}
	if !rec.Quarantined || !rec.NeedCompact || rec.Replayed != 1 {
		t.Fatalf("recovery = %+v, want quarantined with 1 replayed", rec)
	}
	if _, err := os.Stat(path + QuarantineExt); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The surviving prefix was re-logged into a fresh durable file.
	fresh, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("re-logged file missing: %v", err)
	}
	log, err := graph.DecodeDeltaLog(fresh)
	if err != nil || len(log.Batches) != 1 || log.Batches[0].Seq != 1 {
		t.Fatalf("re-logged contents: %v %+v", err, log.Batches)
	}
	if seq := mustAppend(t, l2, graph.EdgeOp{Src: 7, Dst: 8}); seq != 2 {
		t.Fatalf("post-quarantine seq = %d, want 2", seq)
	}
	l2.close(false)
}

func TestDeltaLogStaleLineageDiscarded(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1})
	l.close(false)

	// Reopen under a new lineage, as after a whole-graph replace whose log
	// cleanup was lost to a crash: the old deltas must not replay.
	l2, rec, err := openDeltaLog("g", path, 2, &c)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 0 {
		t.Fatalf("stale-lineage log replayed %d batches", rec.Replayed)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("stale log still on disk: %v", err)
	}
	l2.close(false)
}

func TestDeltaLogRotateDropsCompacted(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, l, graph.EdgeOp{Src: uint32(i), Dst: uint32(i + 1)})
	}
	if err := l.rotate(3); err != nil {
		t.Fatal(err)
	}
	if ops := l.opsThrough(^uint64(0)); len(ops) != 1 || ops[0].Src != 3 {
		t.Fatalf("post-rotate tail = %+v, want just the seq-4 op", ops)
	}
	if got := l.tailBatches.Load(); got != 1 {
		t.Fatalf("tailBatches gauge = %d, want 1", got)
	}
	// New appends continue the sequence and survive reopen.
	if seq := mustAppend(t, l, graph.EdgeOp{Src: 9, Dst: 9}); seq != 5 {
		t.Fatalf("post-rotate seq = %d, want 5", seq)
	}
	l.close(false)

	l2, rec, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d after rotate, want 2", rec.Replayed)
	}
	ops := l2.opsThrough(^uint64(0))
	if len(ops) != 2 || ops[0].Src != 3 || ops[1].Src != 9 {
		t.Fatalf("reopened tail = %+v", ops)
	}
	l2.close(false)
}

func TestDeltaLogWedgeHeals(t *testing.T) {
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1})

	// Force the wedged state directly (reaching it for real requires a
	// truncate failure after a failed fsync, which the OS won't cooperate
	// with in a test). Heal must rewrite from the acknowledged tail.
	l.mu.Lock()
	l.wedged = true
	l.wedgedFlag.Store(1)
	l.mu.Unlock()

	if seq := mustAppend(t, l, graph.EdgeOp{Src: 1, Dst: 2}); seq != 2 {
		t.Fatalf("post-heal seq = %d, want 2", seq)
	}
	if l.wedgedFlag.Load() != 0 {
		t.Fatal("log still marked wedged after successful heal")
	}
	if c.healed.Load() == 0 {
		t.Fatal("healed counter not bumped")
	}
	l.close(false)

	if _, rec, err := openDeltaLog("g", path, 1, &c); err != nil || rec.Replayed != 2 {
		t.Fatalf("reopen after heal: %v, %+v", err, rec)
	}
}

func TestDeltaLogWedgeBacksOff(t *testing.T) {
	// A wedged log whose heal keeps failing must refuse appends with a
	// WALWedgedError and back off rather than hammering the disk.
	l := newDeltaLog("g", filepath.Join(t.TempDir(), "missing-dir", "g"+walExt), 1, &walCounters{})
	l.mu.Lock()
	l.wedged = true
	l.wedgedFlag.Store(1)
	l.mu.Unlock()

	var wedged *WALWedgedError
	_, err := l.append([]graph.EdgeOp{{Src: 0, Dst: 1}})
	if !errors.As(err, &wedged) {
		t.Fatalf("err = %v, want WALWedgedError", err)
	}
	// Immediately retrying lands inside the backoff window.
	_, err = l.append([]graph.EdgeOp{{Src: 0, Dst: 1}})
	if !errors.As(err, &wedged) {
		t.Fatalf("backoff err = %v, want WALWedgedError", err)
	}
	if l.wedgedFlag.Load() != 1 {
		t.Fatal("failed heal cleared the wedged flag")
	}
}

func TestDeltaLogMemoryOnly(t *testing.T) {
	var c walCounters
	l, _, err := openDeltaLog("g", "", 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, l, graph.EdgeOp{Src: uint32(i), Dst: uint32(i + 1)})
	}
	if got := l.ackedSeq(); got != 3 {
		t.Fatalf("ackedSeq = %d, want 3", got)
	}
	if err := l.rotate(2); err != nil {
		t.Fatal(err)
	}
	if ops := l.opsThrough(^uint64(0)); len(ops) != 1 {
		t.Fatalf("post-rotate tail = %+v", ops)
	}
	if c.fsyncs.Load() != 0 {
		t.Fatal("memory-only log performed fsyncs")
	}
	l.close(false)
}

func TestDeltaLogAppendFailpoint(t *testing.T) {
	defer fault.Reset()
	var c walCounters
	l, _, err := openDeltaLog("g", walPath(t), 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.EnableFromSpec("store/wal-append=error*1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.append([]graph.EdgeOp{{Src: 0, Dst: 1}}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if seq := mustAppend(t, l, graph.EdgeOp{Src: 0, Dst: 1}); seq != 1 {
		t.Fatalf("seq after injected failure = %d, want 1", seq)
	}
	l.close(false)
}

func TestDeltaLogConcurrentAppendWithFsyncFault(t *testing.T) {
	// Mixed success/failure under concurrency: every append must either be
	// acknowledged (and survive reopen) or error (and be absent on reopen).
	defer fault.Reset()
	path := walPath(t)
	var c walCounters
	l, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.EnableFromSpec("store/wal-fsync=error*3"); err != nil {
		t.Fatal(err)
	}
	const writers = 12
	acked := make([]bool, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := l.append([]graph.EdgeOp{{Src: uint32(i), Dst: uint32(i)}})
			acked[i] = err == nil
		}(i)
	}
	wg.Wait()
	l.close(false)

	l2, _, err := openDeltaLog("g", path, 1, &c)
	if err != nil {
		t.Fatal(err)
	}
	survived := map[uint32]bool{}
	for _, op := range l2.opsThrough(^uint64(0)) {
		survived[op.Src] = true
	}
	for i, ok := range acked {
		if ok && !survived[uint32(i)] {
			t.Fatalf("acknowledged batch %d lost on reopen", i)
		}
		if !ok && survived[uint32(i)] {
			t.Fatalf("unacknowledged batch %d survived reopen", i)
		}
	}
	l2.close(false)
}

func TestWALWedgedErrorFormat(t *testing.T) {
	err := &WALWedgedError{Name: "g", Err: fmt.Errorf("boom")}
	if !errors.Is(err, err.Err) {
		t.Fatal("Unwrap broken")
	}
	if err.Error() == "" {
		t.Fatal("empty message")
	}
}
