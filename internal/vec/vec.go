// Package vec is the software vector unit standing in for the AVX2 SIMD
// instructions Grazelle's kernels are written in (see DESIGN.md §2: pure Go
// has no SIMD intrinsics, so the lane semantics are executed in software).
// A value of type U64x4 models one 256-bit ymm register holding four 64-bit
// lanes; masks model per-lane predication exactly as the AVX gather and
// blend instructions consume it. The 512-bit width lives in
// internal/vsparse's wide encoding (used by the AVX-512-style kernel), and
// the packing-efficiency study of Fig 9 evaluates 8- and 16-lane widths
// analytically from degree distributions.
package vec

import "math"

// Lanes is the number of 64-bit lanes in the primary (256-bit) vector width.
const Lanes = 4

// U64x4 is four 64-bit lanes, the software analog of a ymm register.
type U64x4 [Lanes]uint64

// Mask is a per-lane predicate: bit i enables lane i. The AVX analog is the
// sign bit of each lane of a mask register.
type Mask uint8

// MaskAll enables every lane of a U64x4.
const MaskAll Mask = (1 << Lanes) - 1

// Bit reports whether lane i is enabled.
func (m Mask) Bit(i int) bool { return m&(1<<i) != 0 }

// Count returns the number of enabled lanes (popcount).
func (m Mask) Count() int {
	c := 0
	for i := 0; i < Lanes; i++ {
		if m.Bit(i) {
			c++
		}
	}
	return c
}

// Broadcast returns a vector with x in every lane (vpbroadcastq).
func Broadcast(x uint64) U64x4 { return U64x4{x, x, x, x} }

// Load loads four consecutive lanes from s starting at i. The caller must
// guarantee i+4 <= len(s); the Vector-Sparse format exists precisely so this
// aligned, unguarded load is always legal (no per-lane bounds checks).
func Load(s []uint64, i int) U64x4 {
	_ = s[i+3] // one bounds check for the whole vector, as in an aligned vmovdqa
	return U64x4{s[i], s[i+1], s[i+2], s[i+3]}
}

// Store writes four consecutive lanes into s starting at i.
func Store(s []uint64, i int, v U64x4) {
	_ = s[i+3]
	s[i], s[i+1], s[i+2], s[i+3] = v[0], v[1], v[2], v[3]
}

// GatherU64 is the vgatherqpd analog: for each enabled lane it loads
// vals[idx[lane]]; disabled lanes receive fill (AVX leaves the destination
// lane untouched — passing the pre-gather value as fill models that).
func GatherU64(vals []uint64, idx U64x4, m Mask, fill uint64) U64x4 {
	out := Broadcast(fill)
	for i := 0; i < Lanes; i++ {
		if m.Bit(i) {
			out[i] = vals[idx[i]]
		}
	}
	return out
}

// Blend selects per lane between a (mask bit clear) and b (mask bit set),
// the vblendvpd analog.
func Blend(a, b U64x4, m Mask) U64x4 {
	for i := 0; i < Lanes; i++ {
		if m.Bit(i) {
			a[i] = b[i]
		}
	}
	return a
}

// AddF64 adds lanes as float64 (vaddpd).
func AddF64(a, b U64x4) U64x4 {
	for i := 0; i < Lanes; i++ {
		a[i] = math.Float64bits(math.Float64frombits(a[i]) + math.Float64frombits(b[i]))
	}
	return a
}

// MinU64 takes the lane-wise unsigned minimum (vpminuq).
func MinU64(a, b U64x4) U64x4 {
	for i := 0; i < Lanes; i++ {
		if b[i] < a[i] {
			a[i] = b[i]
		}
	}
	return a
}

// ReduceAddF64 horizontally sums the enabled lanes as float64 into init.
func ReduceAddF64(v U64x4, m Mask, init float64) float64 {
	for i := 0; i < Lanes; i++ {
		if m.Bit(i) {
			init += math.Float64frombits(v[i])
		}
	}
	return init
}

// ReduceMinU64 horizontally minimizes the enabled lanes into init.
func ReduceMinU64(v U64x4, m Mask, init uint64) uint64 {
	for i := 0; i < Lanes; i++ {
		if m.Bit(i) && v[i] < init {
			init = v[i]
		}
	}
	return init
}

// And returns the lane-wise AND with a broadcast constant (vpand).
func And(v U64x4, c uint64) U64x4 {
	for i := 0; i < Lanes; i++ {
		v[i] &= c
	}
	return v
}

// SignMask extracts bit 63 of each lane into a Mask (vmovmskpd). In the
// Vector-Sparse encoding bit 63 is the valid bit, so this yields the
// predicate for the whole vector in one operation.
func SignMask(v U64x4) Mask {
	var m Mask
	for i := 0; i < Lanes; i++ {
		m |= Mask(v[i]>>63) << i
	}
	return m
}

// TestBits returns a mask of lanes whose value has the probe bit set after
// indexing a bitset: lane i is enabled iff bits[idx[i]/64] has bit idx[i]%64.
// This is the vectorized frontier-membership check.
func TestBits(bits []uint64, idx U64x4, m Mask) Mask {
	var out Mask
	for i := 0; i < Lanes; i++ {
		if m.Bit(i) && bits[idx[i]>>6]&(1<<(idx[i]&63)) != 0 {
			out |= 1 << i
		}
	}
	return out
}
