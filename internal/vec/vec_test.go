package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaskBits(t *testing.T) {
	m := Mask(0b1010)
	if m.Bit(0) || !m.Bit(1) || m.Bit(2) || !m.Bit(3) {
		t.Errorf("Mask bit extraction wrong for %04b", m)
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if MaskAll.Count() != Lanes {
		t.Errorf("MaskAll.Count = %d, want %d", MaskAll.Count(), Lanes)
	}
}

func TestBroadcastLoadStore(t *testing.T) {
	if Broadcast(7) != (U64x4{7, 7, 7, 7}) {
		t.Error("Broadcast wrong")
	}
	s := []uint64{1, 2, 3, 4, 5, 6}
	if Load(s, 1) != (U64x4{2, 3, 4, 5}) {
		t.Errorf("Load = %v", Load(s, 1))
	}
	Store(s, 2, Broadcast(9))
	if s[2] != 9 || s[5] != 9 || s[1] != 2 {
		t.Errorf("Store result %v", s)
	}
}

func TestGatherMaskedLanes(t *testing.T) {
	vals := []uint64{10, 20, 30, 40, 50}
	got := GatherU64(vals, U64x4{4, 3, 2, 1}, Mask(0b0101), 99)
	want := U64x4{50, 99, 30, 99}
	if got != want {
		t.Errorf("GatherU64 = %v, want %v", got, want)
	}
}

func TestGatherDisabledLaneNeverDereferences(t *testing.T) {
	// A disabled lane may carry a garbage index beyond the array; the AVX
	// gather does not fault on it and neither must we.
	vals := []uint64{1}
	got := GatherU64(vals, U64x4{0, 1 << 40, 1 << 50, ^uint64(0)}, Mask(0b0001), 0)
	if got != (U64x4{1, 0, 0, 0}) {
		t.Errorf("masked gather = %v", got)
	}
}

func TestBlend(t *testing.T) {
	a := U64x4{1, 2, 3, 4}
	b := U64x4{9, 8, 7, 6}
	if got := Blend(a, b, Mask(0b0110)); got != (U64x4{1, 8, 7, 4}) {
		t.Errorf("Blend = %v", got)
	}
}

func f64(x float64) uint64 { return math.Float64bits(x) }

func TestAddF64(t *testing.T) {
	a := U64x4{f64(1), f64(2.5), f64(-1), f64(0)}
	b := U64x4{f64(2), f64(0.5), f64(1), f64(0)}
	got := AddF64(a, b)
	want := U64x4{f64(3), f64(3), f64(0), f64(0)}
	if got != want {
		t.Errorf("AddF64 = %v, want %v", got, want)
	}
}

func TestMinU64(t *testing.T) {
	a := U64x4{5, 1, 7, 0}
	b := U64x4{3, 2, 7, 9}
	if got := MinU64(a, b); got != (U64x4{3, 1, 7, 0}) {
		t.Errorf("MinU64 = %v", got)
	}
}

func TestReduceAddF64RespectsMask(t *testing.T) {
	v := U64x4{f64(1), f64(10), f64(100), f64(1000)}
	if got := ReduceAddF64(v, Mask(0b1001), 0.5); got != 1001.5 {
		t.Errorf("ReduceAddF64 = %v, want 1001.5", got)
	}
	if got := ReduceAddF64(v, 0, 2); got != 2 {
		t.Errorf("empty-mask reduce = %v, want 2", got)
	}
}

func TestReduceMinU64(t *testing.T) {
	v := U64x4{5, 3, 8, 1}
	if got := ReduceMinU64(v, Mask(0b0111), 4); got != 3 {
		t.Errorf("ReduceMinU64 = %d, want 3 (lane 3 masked off)", got)
	}
	if got := ReduceMinU64(v, MaskAll, 0); got != 0 {
		t.Errorf("ReduceMinU64 with smaller init = %d, want 0", got)
	}
}

func TestAnd(t *testing.T) {
	v := U64x4{0xFF00, 0x0FF0, 0xFFFF, 0}
	if got := And(v, 0x00F0); got != (U64x4{0, 0x00F0, 0x00F0, 0}) {
		t.Errorf("And = %v", got)
	}
}

func TestSignMask(t *testing.T) {
	hi := uint64(1) << 63
	v := U64x4{hi, 0, hi | 5, 7}
	if got := SignMask(v); got != Mask(0b0101) {
		t.Errorf("SignMask = %04b, want 0101", got)
	}
}

func TestTestBits(t *testing.T) {
	bits := make([]uint64, 4) // 256 bits
	set := func(i uint64) { bits[i>>6] |= 1 << (i & 63) }
	set(0)
	set(70)
	set(200)
	got := TestBits(bits, U64x4{0, 70, 71, 200}, MaskAll)
	if got != Mask(0b1011) {
		t.Errorf("TestBits = %04b, want 1011", got)
	}
	// Input mask gates the probes.
	got = TestBits(bits, U64x4{0, 70, 71, 200}, Mask(0b0010))
	if got != Mask(0b0010) {
		t.Errorf("gated TestBits = %04b, want 0010", got)
	}
}

// Property: ReduceAddF64 over all lanes equals the scalar sum.
func TestReduceMatchesScalarProperty(t *testing.T) {
	f := func(a, b, c, d float64, init float64) bool {
		if anyAbnormal(a, b, c, d, init) {
			return true
		}
		v := U64x4{f64(a), f64(b), f64(c), f64(d)}
		got := ReduceAddF64(v, MaskAll, init)
		want := init + a + b + c + d
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func anyAbnormal(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
			return true
		}
	}
	return false
}

// Property: Blend(a, b, m) then Blend(result, a, m) restores a.
func TestBlendInvolutionProperty(t *testing.T) {
	f := func(a, b U64x4, mRaw uint8) bool {
		m := Mask(mRaw) & MaskAll
		out := Blend(Blend(a, b, m), a, m)
		return out == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
