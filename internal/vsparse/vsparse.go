// Package vsparse implements the Vector-Sparse edge format (§4 of the
// paper), the modification of Compressed-Sparse that makes the pull engine's
// inner loop vectorizable. Edges are packed four per 256-bit vector; each
// vertex's edge group is padded to a whole number of vectors so every load
// is aligned and unguarded, per-lane valid bits drive predicated execution
// instead of bounds checks, and the 48-bit top-level vertex id is embedded
// in the vector itself so the inner loop can detect outer-loop transitions
// without touching the vertex index.
//
// Bit layout of one 64-bit lane (Fig 4):
//
//	bit  63     valid
//	bits 62:48  piece of the top-level vertex id (lane 0 uses only 50:48)
//	bits 47:0   individual (neighbor) vertex id
//
// The 48-bit top-level id is split 3+15+15+15 across the four lanes, most
// significant piece first.
package vsparse

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/vec"
)

const (
	// ValidBit flags a lane as carrying a real edge.
	ValidBit = uint64(1) << 63
	// VertexMask selects the 48-bit individual vertex id of a lane.
	VertexMask = (uint64(1) << 48) - 1

	// Lane 0 carries top-level id bits 47:45 in lane bits 50:48; lanes 1-3
	// carry 15-bit pieces in lane bits 62:48.
	lane0PieceBits = 3
	laneNPieceBits = 15
	pieceShift     = 48
	lane0PieceMask = (uint64(1) << lane0PieceBits) - 1
	laneNPieceMask = (uint64(1) << laneNPieceBits) - 1
)

// Array is a Vector-Sparse edge structure. When ByDest is true the top-level
// vertices are destinations (VSD, the pull engine's layout); otherwise
// sources (VSS, the push engine's layout).
type Array struct {
	// N is the number of top-level vertices.
	N int
	// Words holds the lane data, 4 lanes (one vector) at a time; its length
	// is 4×NumVectors.
	Words []uint64
	// Weights holds lane-parallel edge weights (the paper appends one weight
	// vector per edge vector); nil for unweighted graphs. Padding lanes hold
	// zero.
	Weights []float32
	// Index maps a top-level vertex to its first vector; vertex v owns
	// vectors [Index[v], Index[v+1]). Degree-0 vertices own zero vectors.
	// The inner loop never reads this — it exists for frontier-driven
	// engines that skip whole vertices.
	Index []int
	// ByDest records the grouping (VSD when true, VSS when false).
	ByDest bool
	// ValidEdges is the number of real (non-padding) lanes.
	ValidEdges int
}

// NumVectors returns the number of 4-lane vectors.
func (a *Array) NumVectors() int { return len(a.Words) / vec.Lanes }

// MemoryBytes returns the heap footprint of the array's backing storage.
func (a *Array) MemoryBytes() int64 {
	return int64(len(a.Words))*8 + int64(len(a.Weights))*4 + int64(len(a.Index))*8
}

// Vector loads vector i as a register value.
func (a *Array) Vector(i int) vec.U64x4 { return vec.Load(a.Words, i*vec.Lanes) }

// WeightVector loads the four lane weights of vector i; zero lanes when the
// array is unweighted.
func (a *Array) WeightVector(i int) [vec.Lanes]float32 {
	var w [vec.Lanes]float32
	if a.Weights != nil {
		copy(w[:], a.Weights[i*vec.Lanes:(i+1)*vec.Lanes])
	}
	return w
}

// EncodeVector packs up to four neighbor ids of top-level vertex top into
// one vector. valid gives the live lane count (1..4).
func EncodeVector(top uint64, neighbors [vec.Lanes]uint64, valid int) vec.U64x4 {
	var v vec.U64x4
	pieces := splitTop(top)
	for i := 0; i < vec.Lanes; i++ {
		lane := pieces[i] | (neighbors[i] & VertexMask)
		if i < valid {
			lane |= ValidBit
		}
		v[i] = lane
	}
	return v
}

// splitTop distributes the 48-bit top-level id across the four lanes'
// piece fields (already shifted into position).
func splitTop(top uint64) [vec.Lanes]uint64 {
	return [vec.Lanes]uint64{
		((top >> 45) & lane0PieceMask) << pieceShift,
		((top >> 30) & laneNPieceMask) << pieceShift,
		((top >> 15) & laneNPieceMask) << pieceShift,
		(top & laneNPieceMask) << pieceShift,
	}
}

// DecodeTop reassembles the 48-bit top-level vertex id embedded in a vector.
// This is the extractDest() of the paper's Listing 7: the inner loop calls
// it instead of consulting the vertex index or performing bounds checks.
func DecodeTop(v vec.U64x4) uint64 {
	return ((v[0]>>pieceShift)&lane0PieceMask)<<45 |
		((v[1]>>pieceShift)&laneNPieceMask)<<30 |
		((v[2]>>pieceShift)&laneNPieceMask)<<15 |
		(v[3]>>pieceShift)&laneNPieceMask
}

// Neighbors extracts the individual vertex id of every lane (extractSources
// in Listing 7). Invalid lanes return their padding value.
func Neighbors(v vec.U64x4) vec.U64x4 { return vec.And(v, VertexMask) }

// Valid extracts the per-lane valid mask (consumed as gather predication).
func Valid(v vec.U64x4) vec.Mask { return vec.SignMask(v) }

// FromCSR converts a Compressed-Sparse matrix into Vector-Sparse form,
// preserving grouping and neighbor order. Each top-level vertex's group is
// padded to a multiple of the vector length; padding lanes are invalid and
// replicate the group's last neighbor id (a benign in-range value, so even
// an unpredicated gather cannot fault).
func FromCSR(m *csr.Matrix) *Array {
	a := &Array{N: m.N, ByDest: m.ByDest, ValidEdges: m.NumEdges()}
	a.Index = make([]int, m.N+1)
	totalVectors := 0
	for v := 0; v < m.N; v++ {
		a.Index[v] = totalVectors
		totalVectors += (m.Degree(uint32(v)) + vec.Lanes - 1) / vec.Lanes
	}
	a.Index[m.N] = totalVectors
	a.Words = make([]uint64, totalVectors*vec.Lanes)
	if m.Weights != nil {
		a.Weights = make([]float32, totalVectors*vec.Lanes)
	}
	out := 0
	for v := 0; v < m.N; v++ {
		neigh := m.Edges(uint32(v))
		weights := m.EdgeWeights(uint32(v))
		for lo := 0; lo < len(neigh); lo += vec.Lanes {
			valid := len(neigh) - lo
			if valid > vec.Lanes {
				valid = vec.Lanes
			}
			var lanes [vec.Lanes]uint64
			for i := 0; i < vec.Lanes; i++ {
				if i < valid {
					lanes[i] = uint64(neigh[lo+i])
				} else {
					lanes[i] = uint64(neigh[lo+valid-1]) // padding: repeat last
				}
			}
			vecVal := EncodeVector(uint64(v), lanes, valid)
			vec.Store(a.Words, out*vec.Lanes, vecVal)
			if weights != nil {
				for i := 0; i < valid; i++ {
					a.Weights[out*vec.Lanes+i] = weights[lo+i]
				}
			}
			out++
		}
	}
	return a
}

// ToCSR reconstructs the Compressed-Sparse matrix the array encodes,
// dropping padding lanes.
func (a *Array) ToCSR() *csr.Matrix {
	m := &csr.Matrix{N: a.N, ByDest: a.ByDest}
	m.Index = make([]uint64, a.N+1)
	m.Neigh = make([]uint32, 0, a.ValidEdges)
	if a.Weights != nil {
		m.Weights = make([]float32, 0, a.ValidEdges)
	}
	for v := 0; v < a.N; v++ {
		m.Index[v] = uint64(len(m.Neigh))
		for i := a.Index[v]; i < a.Index[v+1]; i++ {
			vv := a.Vector(i)
			mask := Valid(vv)
			for lane := 0; lane < vec.Lanes; lane++ {
				if mask.Bit(lane) {
					m.Neigh = append(m.Neigh, uint32(vv[lane]&VertexMask))
					if a.Weights != nil {
						m.Weights = append(m.Weights, a.Weights[i*vec.Lanes+lane])
					}
				}
			}
		}
	}
	m.Index[a.N] = uint64(len(m.Neigh))
	return m
}

// Validate checks encoding invariants: every vector's embedded top-level id
// matches the index that owns it, valid lanes are in range, lane validity is
// a prefix, and ValidEdges matches the live lane count.
func (a *Array) Validate() error {
	if len(a.Index) != a.N+1 {
		return fmt.Errorf("vsparse: index length %d, want %d", len(a.Index), a.N+1)
	}
	if len(a.Words)%vec.Lanes != 0 {
		return fmt.Errorf("vsparse: %d words is not a whole number of vectors", len(a.Words))
	}
	live := 0
	for v := 0; v < a.N; v++ {
		if a.Index[v+1] < a.Index[v] {
			return fmt.Errorf("vsparse: index not monotone at %d", v)
		}
		for i := a.Index[v]; i < a.Index[v+1]; i++ {
			vv := a.Vector(i)
			if got := DecodeTop(vv); got != uint64(v) {
				return fmt.Errorf("vsparse: vector %d embeds top id %d, owned by %d", i, got, v)
			}
			mask := Valid(vv)
			seenInvalid := false
			for lane := 0; lane < vec.Lanes; lane++ {
				if mask.Bit(lane) {
					if seenInvalid {
						return fmt.Errorf("vsparse: vector %d validity is not a prefix", i)
					}
					if vv[lane]&VertexMask >= uint64(a.N) {
						return fmt.Errorf("vsparse: vector %d lane %d neighbor out of range", i, lane)
					}
					live++
				} else {
					seenInvalid = true
				}
			}
			if mask == 0 {
				return fmt.Errorf("vsparse: vector %d has no valid lanes", i)
			}
		}
	}
	if a.Index[a.N] != a.NumVectors() {
		return fmt.Errorf("vsparse: index does not cover all %d vectors", a.NumVectors())
	}
	if live != a.ValidEdges {
		return fmt.Errorf("vsparse: %d live lanes, recorded %d", live, a.ValidEdges)
	}
	return nil
}

// PackingEfficiency is the fraction of lanes that carry real edges — the
// metric of the paper's Fig 9. It ranges over (0, 1]; 25% means every vector
// holds a single edge.
func (a *Array) PackingEfficiency() float64 {
	if len(a.Words) == 0 {
		return 0
	}
	return float64(a.ValidEdges) / float64(len(a.Words))
}

// PackingEfficiencyForLanes computes, analytically from a degree
// distribution, the packing efficiency a Vector-Sparse encoding with the
// given lane count would achieve. Fig 9 evaluates lanes ∈ {4, 8, 16}
// (256-, 512-, and 1024-bit vectors).
func PackingEfficiencyForLanes(degrees []int, lanes int) float64 {
	validLanes, totalLanes := 0, 0
	for _, d := range degrees {
		if d == 0 {
			continue
		}
		vectors := (d + lanes - 1) / lanes
		validLanes += d
		totalLanes += vectors * lanes
	}
	if totalLanes == 0 {
		return 0
	}
	return float64(validLanes) / float64(totalLanes)
}
