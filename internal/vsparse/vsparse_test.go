package vsparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/csr"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vec"
)

func TestEncodeDecodeTop(t *testing.T) {
	for _, top := range []uint64{0, 1, 7, 1 << 15, 1<<30 + 3, (1 << 48) - 1, 0xDEAD_BEEF_CAFE} {
		v := EncodeVector(top, [vec.Lanes]uint64{1, 2, 3, 4}, 4)
		if got := DecodeTop(v); got != top {
			t.Errorf("DecodeTop(EncodeVector(%#x)) = %#x", top, got)
		}
	}
}

func TestEncodeValidPrefix(t *testing.T) {
	v := EncodeVector(5, [vec.Lanes]uint64{10, 20, 30, 30}, 3)
	if got := Valid(v); got != vec.Mask(0b0111) {
		t.Errorf("Valid = %04b, want 0111", got)
	}
	n := Neighbors(v)
	if n[0] != 10 || n[1] != 20 || n[2] != 30 {
		t.Errorf("Neighbors = %v", n)
	}
	// Neighbor extraction must strip the metadata bits entirely.
	for i := 0; i < vec.Lanes; i++ {
		if n[i] > VertexMask {
			t.Errorf("lane %d leaked metadata: %#x", i, n[i])
		}
	}
}

func fig2CSC() *csr.Matrix {
	g := graph.NewBuilder(64).
		AddEdge(0, 10).AddEdge(0, 23).AddEdge(0, 50).
		AddEdge(1, 54).AddEdge(1, 62).
		AddEdge(2, 10).AddEdge(2, 0).AddEdge(2, 14).
		MustBuild()
	return csr.FromGraph(g, true)
}

func TestFromCSRStructure(t *testing.T) {
	a := FromCSR(fig2CSC())
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.ByDest {
		t.Error("grouping flag lost")
	}
	if a.ValidEdges != 8 {
		t.Errorf("ValidEdges = %d, want 8", a.ValidEdges)
	}
	// 7 destinations each with in-degree <= 2 -> one vector each.
	if a.NumVectors() != 7 {
		t.Errorf("NumVectors = %d, want 7", a.NumVectors())
	}
	// Vertex 10 (in-degree 2, from 0 and 2) occupies exactly one vector with
	// two valid lanes.
	lo, hi := a.Index[10], a.Index[11]
	if hi-lo != 1 {
		t.Fatalf("vertex 10 owns %d vectors, want 1", hi-lo)
	}
	v := a.Vector(lo)
	if DecodeTop(v) != 10 {
		t.Errorf("embedded top id = %d, want 10", DecodeTop(v))
	}
	if Valid(v).Count() != 2 {
		t.Errorf("valid lanes = %d, want 2", Valid(v).Count())
	}
}

func TestPaddingRepeatsLastNeighbor(t *testing.T) {
	// Degree-5 vertex: two vectors, second has 1 valid lane and 3 padding
	// lanes that must replicate the last neighbor (in-range, never faulting).
	b := graph.NewBuilder(16)
	for _, s := range []uint32{1, 2, 3, 4, 5} {
		b.AddEdge(s, 0)
	}
	a := FromCSR(csr.FromGraph(b.MustBuild(), true))
	if a.Index[1]-a.Index[0] != 2 {
		t.Fatalf("vertex 0 owns %d vectors, want 2", a.Index[1]-a.Index[0])
	}
	second := a.Vector(1)
	if Valid(second) != vec.Mask(0b0001) {
		t.Fatalf("second vector valid mask = %04b", Valid(second))
	}
	n := Neighbors(second)
	for lane := 1; lane < vec.Lanes; lane++ {
		if n[lane] != n[0] {
			t.Errorf("padding lane %d = %d, want %d", lane, n[lane], n[0])
		}
	}
}

func TestRoundTripCSR(t *testing.T) {
	for _, byDest := range []bool{false, true} {
		g := gen.RMAT(8, 700, gen.DefaultRMAT, 3)
		m := csr.FromGraph(g, byDest)
		back := FromCSR(m).ToCSR()
		if !reflect.DeepEqual(m.Index, back.Index) || !reflect.DeepEqual(m.Neigh, back.Neigh) {
			t.Errorf("byDest=%v: Vector-Sparse round trip corrupted the matrix", byDest)
		}
	}
}

func TestRoundTripWeighted(t *testing.T) {
	g := gen.AddUniformWeights(gen.ErdosRenyi(30, 150, 2), 7)
	m := csr.FromGraph(g, true)
	a := FromCSR(m)
	if a.Weights == nil {
		t.Fatal("weights dropped")
	}
	back := a.ToCSR()
	if !reflect.DeepEqual(m.Weights, back.Weights) {
		t.Error("weights corrupted in round trip")
	}
	// Padding weight lanes are zero.
	for i := 0; i < a.NumVectors(); i++ {
		mask := Valid(a.Vector(i))
		w := a.WeightVector(i)
		for lane := 0; lane < vec.Lanes; lane++ {
			if !mask.Bit(lane) && w[lane] != 0 {
				t.Fatalf("vector %d padding lane %d weight = %v", i, lane, w[lane])
			}
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	a := FromCSR(fig2CSC())
	a.Words[0] ^= 1 << pieceShift // corrupt embedded top id
	if a.Validate() == nil {
		t.Error("Validate accepted corrupted top-level id")
	}
	a = FromCSR(fig2CSC())
	a.ValidEdges++
	if a.Validate() == nil {
		t.Error("Validate accepted wrong ValidEdges")
	}
}

func TestPackingEfficiencyExamples(t *testing.T) {
	// A degree-7 vertex occupies two vectors with 7 valid of 8 lanes (the
	// paper's example in §4).
	b := graph.NewBuilder(8)
	for s := uint32(1); s <= 7; s++ {
		b.AddEdge(s, 0)
	}
	a := FromCSR(csr.FromGraph(b.MustBuild(), true))
	if got := a.PackingEfficiency(); got != 7.0/8.0 {
		t.Errorf("PackingEfficiency = %v, want 7/8", got)
	}
}

func TestPackingEfficiencyForLanes(t *testing.T) {
	deg := []int{7} // 7/8 at 4 lanes, 7/8 at 8 lanes... no: 7 of 8 at 8 lanes too
	if got := PackingEfficiencyForLanes(deg, 4); got != 7.0/8.0 {
		t.Errorf("4 lanes: %v, want 7/8", got)
	}
	if got := PackingEfficiencyForLanes(deg, 8); got != 7.0/8.0 {
		t.Errorf("8 lanes: %v, want 7/8", got)
	}
	if got := PackingEfficiencyForLanes(deg, 16); got != 7.0/16.0 {
		t.Errorf("16 lanes: %v, want 7/16", got)
	}
	// Degree-0 vertices contribute nothing.
	if got := PackingEfficiencyForLanes([]int{0, 0, 4}, 4); got != 1.0 {
		t.Errorf("with zeros: %v, want 1", got)
	}
	if got := PackingEfficiencyForLanes(nil, 4); got != 0 {
		t.Errorf("empty: %v, want 0", got)
	}
}

func TestPackingEfficiencyMatchesAnalytic(t *testing.T) {
	g := gen.RMAT(9, 2000, gen.DefaultRMAT, 11)
	m := csr.FromGraph(g, true)
	a := FromCSR(m)
	analytic := PackingEfficiencyForLanes(g.InDegrees(), vec.Lanes)
	if got := a.PackingEfficiency(); got != analytic {
		t.Errorf("encoded efficiency %v != analytic %v", got, analytic)
	}
}

// Property: round trip through Vector-Sparse preserves any random CSC, and
// packing efficiency stays within (0.25, 1] for 4 lanes.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, byDest bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		b := graph.NewBuilder(n)
		ne := rng.Intn(400)
		for i := 0; i < ne; i++ {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		m := csr.FromGraph(b.MustBuild(), byDest)
		a := FromCSR(m)
		if a.Validate() != nil {
			return false
		}
		if ne > 0 {
			eff := a.PackingEfficiency()
			if eff <= 0.25-1e-12 || eff > 1 {
				return false
			}
		}
		back := a.ToCSR()
		return reflect.DeepEqual(m.Index, back.Index) && reflect.DeepEqual(m.Neigh, back.Neigh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: efficiency never increases with wider lanes (Fig 9's monotone
// drop with vector width).
func TestEfficiencyMonotoneInLanesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.RMAT(7, 300, gen.DefaultRMAT, seed)
		deg := g.InDegrees()
		e4 := PackingEfficiencyForLanes(deg, 4)
		e8 := PackingEfficiencyForLanes(deg, 8)
		e16 := PackingEfficiencyForLanes(deg, 16)
		return e4 >= e8 && e8 >= e16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
