package vsparse

import (
	"fmt"

	"repro/internal/csr"
)

// This file generalizes Vector-Sparse to wider vectors, as §4 anticipates:
// "its underlying ideas are generalizable to other vector architectures and
// longer vectors (e.g., 512-bit vectors in AVX-512)". A WideArray packs
// WideLanes edges per vector; the 48-bit top-level vertex id is split into
// 6-bit pieces, one per lane, in bits 53:48 (the valid bit stays at 63).
// Fig 9 predicts the trade-off this realizes: wider vectors amortize more
// bookkeeping per edge but waste more padding on low-degree vertices.

// WideLanes is the lane count of the 512-bit format.
const WideLanes = 8

const (
	widePieceBits = 48 / WideLanes // 6
	widePieceMask = (uint64(1) << widePieceBits) - 1
)

// WideArray is the 8-lane Vector-Sparse edge structure.
type WideArray struct {
	// N is the number of top-level vertices.
	N int
	// Words holds lane data, WideLanes lanes per vector.
	Words []uint64
	// Weights is lane-parallel (nil when unweighted).
	Weights []float32
	// Index maps a top-level vertex to its first vector.
	Index []int
	// ByDest records the grouping.
	ByDest bool
	// ValidEdges counts real (non-padding) lanes.
	ValidEdges int
}

// NumVectors returns the vector count.
func (a *WideArray) NumVectors() int { return len(a.Words) / WideLanes }

// EncodeWideLane builds one lane word for a vector belonging to top-level
// vertex top: lane index `lane` carries top-id piece number `lane`.
func EncodeWideLane(top uint64, lane int, neighbor uint64, valid bool) uint64 {
	shift := uint(48 - widePieceBits*(lane+1)) // piece 0 is most significant
	w := ((top >> shift) & widePieceMask) << pieceShift
	w |= neighbor & VertexMask
	if valid {
		w |= ValidBit
	}
	return w
}

// DecodeTopWide reassembles the 48-bit top-level id from a vector's lane
// words.
func DecodeTopWide(lanes []uint64) uint64 {
	var top uint64
	for i := 0; i < WideLanes; i++ {
		top = top<<widePieceBits | (lanes[i]>>pieceShift)&widePieceMask
	}
	return top
}

// FromCSRWide converts a Compressed-Sparse matrix into the 8-lane format.
// Padding lanes replicate the group's last neighbor, as in the 4-lane
// encoder.
func FromCSRWide(m *csr.Matrix) *WideArray {
	a := &WideArray{N: m.N, ByDest: m.ByDest, ValidEdges: m.NumEdges()}
	a.Index = make([]int, m.N+1)
	total := 0
	for v := 0; v < m.N; v++ {
		a.Index[v] = total
		total += (m.Degree(uint32(v)) + WideLanes - 1) / WideLanes
	}
	a.Index[m.N] = total
	a.Words = make([]uint64, total*WideLanes)
	if m.Weights != nil {
		a.Weights = make([]float32, total*WideLanes)
	}
	out := 0
	for v := 0; v < m.N; v++ {
		neigh := m.Edges(uint32(v))
		weights := m.EdgeWeights(uint32(v))
		for lo := 0; lo < len(neigh); lo += WideLanes {
			valid := len(neigh) - lo
			if valid > WideLanes {
				valid = WideLanes
			}
			base := out * WideLanes
			for lane := 0; lane < WideLanes; lane++ {
				n := uint64(neigh[lo+valid-1]) // padding default
				if lane < valid {
					n = uint64(neigh[lo+lane])
				}
				a.Words[base+lane] = EncodeWideLane(uint64(v), lane, n, lane < valid)
				if weights != nil && lane < valid {
					a.Weights[base+lane] = weights[lo+lane]
				}
			}
			out++
		}
	}
	return a
}

// ToCSR reconstructs the matrix, dropping padding lanes.
func (a *WideArray) ToCSR() *csr.Matrix {
	m := &csr.Matrix{N: a.N, ByDest: a.ByDest}
	m.Index = make([]uint64, a.N+1)
	m.Neigh = make([]uint32, 0, a.ValidEdges)
	if a.Weights != nil {
		m.Weights = make([]float32, 0, a.ValidEdges)
	}
	for v := 0; v < a.N; v++ {
		m.Index[v] = uint64(len(m.Neigh))
		for vi := a.Index[v]; vi < a.Index[v+1]; vi++ {
			base := vi * WideLanes
			for lane := 0; lane < WideLanes; lane++ {
				w := a.Words[base+lane]
				if w&ValidBit == 0 {
					continue
				}
				m.Neigh = append(m.Neigh, uint32(w&VertexMask))
				if a.Weights != nil {
					m.Weights = append(m.Weights, a.Weights[base+lane])
				}
			}
		}
	}
	m.Index[a.N] = uint64(len(m.Neigh))
	return m
}

// Validate checks the wide-format invariants.
func (a *WideArray) Validate() error {
	if len(a.Words)%WideLanes != 0 {
		return fmt.Errorf("vsparse: wide words not a whole number of vectors")
	}
	live := 0
	for v := 0; v < a.N; v++ {
		for vi := a.Index[v]; vi < a.Index[v+1]; vi++ {
			base := vi * WideLanes
			lanes := a.Words[base : base+WideLanes]
			if got := DecodeTopWide(lanes); got != uint64(v) {
				return fmt.Errorf("vsparse: wide vector %d embeds top %d, owned by %d", vi, got, v)
			}
			seenInvalid := false
			anyValid := false
			for lane := 0; lane < WideLanes; lane++ {
				if lanes[lane]&ValidBit != 0 {
					if seenInvalid {
						return fmt.Errorf("vsparse: wide vector %d validity not a prefix", vi)
					}
					if lanes[lane]&VertexMask >= uint64(a.N) {
						return fmt.Errorf("vsparse: wide vector %d lane %d out of range", vi, lane)
					}
					live++
					anyValid = true
				} else {
					seenInvalid = true
				}
			}
			if !anyValid {
				return fmt.Errorf("vsparse: wide vector %d has no valid lanes", vi)
			}
		}
	}
	if a.Index[a.N] != a.NumVectors() {
		return fmt.Errorf("vsparse: wide index does not cover vectors")
	}
	if live != a.ValidEdges {
		return fmt.Errorf("vsparse: wide live lanes %d != recorded %d", live, a.ValidEdges)
	}
	return nil
}

// PackingEfficiency is the live-lane fraction.
func (a *WideArray) PackingEfficiency() float64 {
	if len(a.Words) == 0 {
		return 0
	}
	return float64(a.ValidEdges) / float64(len(a.Words))
}
