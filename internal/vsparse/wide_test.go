package vsparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/csr"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestWideEncodeDecodeTop(t *testing.T) {
	for _, top := range []uint64{0, 1, 63, 64, 1 << 20, (1 << 48) - 1, 0xABCDEF012345} {
		lanes := make([]uint64, WideLanes)
		for i := range lanes {
			lanes[i] = EncodeWideLane(top, i, uint64(i), true)
		}
		if got := DecodeTopWide(lanes); got != top {
			t.Errorf("DecodeTopWide = %#x, want %#x", got, top)
		}
	}
}

func TestWideRoundTrip(t *testing.T) {
	g := gen.RMAT(8, 900, gen.DefaultRMAT, 13)
	m := csr.FromGraph(g, true)
	a := FromCSRWide(m)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	back := a.ToCSR()
	if !reflect.DeepEqual(m.Index, back.Index) || !reflect.DeepEqual(m.Neigh, back.Neigh) {
		t.Error("wide round trip corrupted the matrix")
	}
}

func TestWideWeighted(t *testing.T) {
	g := gen.AddUniformWeights(gen.ErdosRenyi(40, 300, 3), 4)
	m := csr.FromGraph(g, true)
	a := FromCSRWide(m)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	back := a.ToCSR()
	if !reflect.DeepEqual(m.Weights, back.Weights) {
		t.Error("wide weights corrupted")
	}
}

func TestWidePackingBelowNarrow(t *testing.T) {
	g := gen.RMAT(9, 2500, gen.DefaultRMAT, 17)
	m := csr.FromGraph(g, true)
	narrow := FromCSR(m).PackingEfficiency()
	wide := FromCSRWide(m).PackingEfficiency()
	if wide > narrow+1e-12 {
		t.Errorf("8-lane packing %v exceeds 4-lane %v", wide, narrow)
	}
	// And it must equal the analytic prediction used by Fig 9.
	if analytic := PackingEfficiencyForLanes(g.InDegrees(), WideLanes); wide != analytic {
		t.Errorf("wide packing %v != analytic %v", wide, analytic)
	}
}

func TestWideRoundTripProperty(t *testing.T) {
	f := func(seed int64, byDest bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		b := graph.NewBuilder(n)
		for i := rng.Intn(400); i > 0; i-- {
			b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		m := csr.FromGraph(b.MustBuild(), byDest)
		a := FromCSRWide(m)
		if a.Validate() != nil {
			return false
		}
		back := a.ToCSR()
		return reflect.DeepEqual(m.Index, back.Index) && reflect.DeepEqual(m.Neigh, back.Neigh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
