package grazelle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// End-to-end tests of the serve mode's observability surface: /metrics
// deltas across a query, the /v1/runs trace ring with the sum-of-phases
// wall-time invariant, run IDs threading response ↔ record ↔ log, and the
// opt-in pprof listener.

// startServeObs launches `grazelle serve` with a pprof listener and returns
// both announced base URLs (service, pprof).
func startServeObs(t *testing.T, extra ...string) (string, string, *exec.Cmd) {
	t.Helper()
	bin := filepath.Join(cliBinaries(t), "grazelle")
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The service address is announced first, the pprof address second.
	var base, pprofBase string
	sc := bufio.NewScanner(stdout)
	for pprofBase == "" && sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "http://")
		if i < 0 {
			continue
		}
		addr := strings.TrimSpace(line[i:])
		if base == "" {
			base = addr
		} else {
			pprofBase = strings.TrimSuffix(addr, "/debug/pprof/")
		}
	}
	if base == "" || pprofBase == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("server never announced both addresses: %v", sc.Err())
	}
	// Keep draining the merged output so request logs never block the child.
	go io.Copy(io.Discard, stdout)
	return base, pprofBase, cmd
}

// metricSample returns the value of the first sample line whose name and
// label set contain all of the given substrings.
func metricSample(t *testing.T, text string, substrs ...string) (float64, bool) {
	t.Helper()
line:
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		for _, sub := range substrs {
			if !strings.Contains(ln, sub) {
				continue line
			}
		}
		fields := strings.Fields(ln)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", ln, err)
		}
		return v, true
	}
	return 0, false
}

func fetchText(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestServeMetricsEndToEnd drives a query through a live server and asserts
// the /metrics families move accordingly, the run's trace is retrievable by
// the run_id from the response, and the per-phase walls tile the run's wall
// time.
func TestServeMetricsEndToEnd(t *testing.T) {
	base, pprofBase, cmd := startServeObs(t, "-d", "C", "-scale", "0.25")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}

	before := fetchText(t, client, base+"/metrics")
	// Every ISSUE-mandated family is present from the first scrape.
	for _, fam := range []string{
		"grazelle_runs_total",
		"grazelle_run_seconds",
		"grazelle_run_phase_seconds",
		"grazelle_sched_job_exec_seconds",
		"grazelle_sched_job_wait_seconds",
		"grazelle_admission_admitted_total",
		"grazelle_admission_rejected_total",
		"grazelle_store_graphs",
		"grazelle_store_bytes_resident",
		"grazelle_watchdog_slow_runs_total",
		"grazelle_http_request_seconds",
		"grazelle_http_responses_total",
		"grazelle_qcache_hits_total",
		"grazelle_qcache_misses_total",
		"grazelle_qcache_coalesced_total",
		"grazelle_qcache_evictions_total",
		"grazelle_qcache_bytes",
	} {
		if !strings.Contains(before, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	runsBefore, _ := metricSample(t, before, "grazelle_runs_total")
	runSecsBefore, _ := metricSample(t, before, "grazelle_run_seconds_count")

	// Enough iterations that phase wall times dominate the run and the
	// sum-of-phases invariant is meaningful, per the acceptance criteria.
	resp, err := client.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"app":"pr","iters":32}`))
	if err != nil {
		t.Fatal(err)
	}
	var q struct {
		RunID     string `json:"run_id"`
		Iters     int    `json:"iterations"`
		ElapsedMS int64  `json:"elapsed_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if q.RunID == "" {
		t.Fatal("query response carries no run_id")
	}
	if hdr := resp.Header.Get("X-Run-Id"); hdr != q.RunID {
		t.Errorf("X-Run-Id header %q != body run_id %q", hdr, q.RunID)
	}

	after := fetchText(t, client, base+"/metrics")
	runsAfter, _ := metricSample(t, after, "grazelle_runs_total")
	if runsAfter != runsBefore+1 {
		t.Errorf("grazelle_runs_total went %v -> %v across one query", runsBefore, runsAfter)
	}
	runSecsAfter, _ := metricSample(t, after, "grazelle_run_seconds_count")
	if runSecsAfter != runSecsBefore+1 {
		t.Errorf("grazelle_run_seconds_count went %v -> %v across one query", runSecsBefore, runSecsAfter)
	}
	if v, ok := metricSample(t, after, "grazelle_run_phase_seconds_count", `phase="edge-pull"`); !ok || v < 1 {
		t.Errorf("edge-pull phase histogram count = %v (present %v)", v, ok)
	}
	if v, ok := metricSample(t, after, "grazelle_http_responses_total", `path="/v1/query"`, `code="2xx"`); !ok || v < 1 {
		t.Errorf("http responses 2xx for /v1/query = %v (present %v)", v, ok)
	}
	if v, ok := metricSample(t, after, "grazelle_sched_job_exec_seconds_count"); !ok || v < 1 {
		t.Errorf("job exec histogram count = %v (present %v)", v, ok)
	}

	// The run's trace, by the ID the response handed back.
	var rec struct {
		ID     string `json:"id"`
		Graph  string `json:"graph"`
		App    string `json:"app"`
		WallNS int64  `json:"wall_ns"`
		Iters  int    `json:"iterations"`
		Trace  struct {
			Phases []struct {
				Phase  string `json:"phase"`
				WallNS int64  `json:"wall_ns"`
				Iters  int64  `json:"iters"`
			} `json:"phases"`
			Dropped bool `json:"dropped"`
		} `json:"trace"`
	}
	recBody := fetchText(t, client, base+"/v1/runs/"+q.RunID)
	if err := json.Unmarshal([]byte(recBody), &rec); err != nil {
		t.Fatalf("decode run record: %v\n%s", err, recBody)
	}
	if rec.ID != q.RunID || rec.App != "pr" || rec.Graph != "default" {
		t.Errorf("record identity = %+v, want id %s app pr graph default", rec, q.RunID)
	}
	if rec.Iters != q.Iters {
		t.Errorf("record iterations %d != response %d", rec.Iters, q.Iters)
	}
	if rec.Trace.Dropped || len(rec.Trace.Phases) == 0 {
		t.Fatalf("trace missing or dropped: %+v", rec.Trace)
	}
	var phaseSum int64
	seen := map[string]bool{}
	for _, ph := range rec.Trace.Phases {
		phaseSum += ph.WallNS
		seen[ph.Phase] = true
	}
	for _, want := range []string{"edge-pull", "vertex"} {
		if !seen[want] {
			t.Errorf("phase %s missing from trace %+v", want, rec.Trace.Phases)
		}
	}
	// Sum-of-phases ≈ total wall time: never above it, and with 32 dense
	// PageRank iterations the engine phases dominate the run.
	if phaseSum > rec.WallNS {
		t.Errorf("phase wall sum %d exceeds run wall %d", phaseSum, rec.WallNS)
	}
	if phaseSum < rec.WallNS/2 {
		t.Errorf("phase wall sum %d under half the run wall %d — phases should dominate", phaseSum, rec.WallNS)
	}

	// The listing shows the same run newest-first; an unknown ID is 404.
	listBody := fetchText(t, client, base+"/v1/runs?n=5")
	var list struct {
		Runs []struct {
			ID string `json:"id"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(listBody), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) == 0 || list.Runs[0].ID != q.RunID {
		t.Errorf("/v1/runs head = %+v, want most recent %s", list.Runs, q.RunID)
	}
	if resp, err := client.Get(base + "/v1/runs/run-999999"); err != nil {
		t.Errorf("unknown run id: %v", err)
	} else {
		if resp.StatusCode != 404 {
			t.Errorf("unknown run id: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The opt-in pprof listener answers on its own address only.
	pp := fetchText(t, client, pprofBase+"/debug/pprof/cmdline")
	if !strings.Contains(pp, "grazelle") {
		t.Errorf("pprof cmdline output %q does not mention the binary", pp)
	}
	if resp, err := client.Get(base + "/debug/pprof/"); err == nil {
		if resp.StatusCode == 200 {
			t.Error("pprof reachable on the public address")
		}
		resp.Body.Close()
	}
}

// TestServeStatsMatchesMetrics: /v1/stats and /metrics render the same
// counters, so the two views of watchdog/admission/run state cannot drift.
func TestServeStatsMatchesMetrics(t *testing.T) {
	base, _, cmd := startServeObs(t, "-d", "C", "-scale", "0.25", "-soft-limit", "1h")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}

	// Distinct iteration counts so each query is a cache miss and a real run.
	for i := 0; i < 3; i++ {
		resp, err := client.Post(base+"/v1/query", "application/json",
			strings.NewReader(fmt.Sprintf(`{"app":"pr","iters":%d}`, 4+i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var stats struct {
		Runs     float64 `json:"runs"`
		Rejected float64 `json:"rejected"`
		Watchdog *struct {
			SlowTotal float64 `json:"slow_total"`
			HardKills float64 `json:"hard_kills"`
		} `json:"watchdog"`
	}
	if err := json.Unmarshal([]byte(fetchText(t, client, base+"/v1/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	text := fetchText(t, client, base+"/metrics")
	for name, want := range map[string]float64{
		"grazelle_runs_total":               stats.Runs,
		"grazelle_admission_rejected_total": stats.Rejected,
	} {
		if got, ok := metricSample(t, text, name); !ok || got != want {
			t.Errorf("%s = %v, /v1/stats says %v", name, got, want)
		}
	}
	if stats.Watchdog == nil {
		t.Fatal("watchdog stats missing with -soft-limit set")
	}
	if got, ok := metricSample(t, text, "grazelle_watchdog_slow_runs_total"); !ok || got != stats.Watchdog.SlowTotal {
		t.Errorf("watchdog slow runs: metrics %v, stats %v", got, stats.Watchdog.SlowTotal)
	}
	if stats.Runs < 3 {
		t.Errorf("runs = %v after 3 queries", stats.Runs)
	}
}
