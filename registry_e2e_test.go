package grazelle

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// End-to-end tests of the app registry over the serve API: GET /v1/apps
// enumerates every registered application with its parameter schema, and
// every unweighted app is queryable over POST /v1/query with a cache miss
// followed by a byte-identical hit — including a request that differs only
// in a parameter the app's schema ignores, which must canonicalize onto the
// same cache key (the coalescing criterion from the satellite list).

// appsListing mirrors the /v1/apps response shape.
type appsListing struct {
	Apps []struct {
		Name         string         `json:"name"`
		Title        string         `json:"title"`
		Description  string         `json:"description"`
		Params       []string       `json:"params"`
		Defaults     map[string]int `json:"defaults"`
		NeedsWeights bool           `json:"needs_weights"`
	} `json:"apps"`
}

func fetchApps(t *testing.T, client *http.Client, base string) appsListing {
	t.Helper()
	var listing appsListing
	if err := json.Unmarshal([]byte(fetchText(t, client, base+"/v1/apps")), &listing); err != nil {
		t.Fatalf("decode /v1/apps: %v", err)
	}
	return listing
}

func TestServeAppsEndpoint(t *testing.T) {
	base, _, cmd := startServeObs(t, "-d", "C", "-scale", "0.25")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 30 * time.Second}

	listing := fetchApps(t, client, base)
	byName := map[string]int{}
	for i, a := range listing.Apps {
		byName[a.Name] = i
		if a.Title == "" || a.Description == "" {
			t.Errorf("app %q missing title or description", a.Name)
		}
	}
	for _, name := range []string{"pr", "wpr", "cc", "bfs", "sssp", "tc", "kcore", "lp", "ppr"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("/v1/apps missing registered app %q", name)
		}
	}
	if a := listing.Apps[byName["pr"]]; len(a.Params) != 1 || a.Params[0] != "iters" || a.Defaults["iters"] != 16 {
		t.Errorf("pr schema over the wire = %+v", a)
	}
	if a := listing.Apps[byName["kcore"]]; len(a.Params) != 1 || a.Params[0] != "k" || a.Defaults["k"] != 2 {
		t.Errorf("kcore schema over the wire = %+v", a)
	}
	for _, name := range []string{"wpr", "sssp"} {
		if !listing.Apps[byName[name]].NeedsWeights {
			t.Errorf("%s should advertise needs_weights", name)
		}
	}
}

// TestServeRegistryAppsCacheHits runs every unweighted registered app over
// the query API: miss, then byte-identical hit, then a hit for a request
// bumped only in an ignored field — with grazelle_runs_total advancing by
// exactly one per app across the whole sequence.
func TestServeRegistryAppsCacheHits(t *testing.T) {
	base, _, cmd := startServeObs(t, "-d", "C", "-scale", "0.25")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	client := &http.Client{Timeout: 60 * time.Second}

	// queries pair each app with a bumped variant differing only in a field
	// the app's registered schema ignores.
	queries := []struct {
		app     string
		q       string
		ignored string
	}{
		{"pr", `{"app":"pr","iters":6,"values":true}`, `{"app":"pr","iters":6,"root":9,"values":true}`},
		{"cc", `{"app":"cc","values":true}`, `{"app":"cc","iters":3,"values":true}`},
		{"bfs", `{"app":"bfs","root":1,"values":true}`, `{"app":"bfs","root":1,"k":7,"values":true}`},
		{"tc", `{"app":"tc","values":true}`, `{"app":"tc","iters":2,"root":4,"values":true}`},
		{"kcore", `{"app":"kcore","k":2,"values":true}`, `{"app":"kcore","k":2,"iters":9,"values":true}`},
		{"lp", `{"app":"lp","iters":5,"values":true}`, `{"app":"lp","iters":5,"root":3,"values":true}`},
		{"ppr", `{"app":"ppr","iters":6,"root":1,"values":true}`, `{"app":"ppr","iters":6,"root":1,"k":5,"values":true}`},
	}

	// Every unweighted registered app must appear in the table above, so a
	// future registration cannot dodge this e2e bar silently.
	listing := fetchApps(t, client, base)
	covered := map[string]bool{}
	for _, q := range queries {
		covered[q.app] = true
	}
	for _, a := range listing.Apps {
		if !a.NeedsWeights && !covered[a.Name] {
			t.Errorf("unweighted app %q not covered by the query table", a.Name)
		}
	}

	runsBefore, _ := metricSample(t, fetchText(t, client, base+"/metrics"), "grazelle_runs_total")

	for _, tc := range queries {
		code, miss, xc, _ := rawQuery(t, client, base, tc.q)
		if code != 200 || xc != "miss" {
			t.Fatalf("%s: first query status %d X-Cache %q body %s", tc.app, code, xc, miss)
		}
		var m map[string]any
		if err := json.Unmarshal(miss, &m); err != nil {
			t.Fatalf("%s: response not JSON: %v", tc.app, err)
		}
		if vals, _ := m["values"].([]any); len(vals) == 0 {
			t.Fatalf("%s: values requested but absent: %s", tc.app, miss)
		}
		if m["app"] != tc.app {
			t.Errorf("%s: response app field = %v", tc.app, m["app"])
		}

		code, hit, xc, _ := rawQuery(t, client, base, tc.q)
		if code != 200 || xc != "hit" {
			t.Fatalf("%s: repeat query status %d X-Cache %q", tc.app, code, xc)
		}
		if string(hit) != string(miss) {
			t.Fatalf("%s: cache hit not byte-identical to the miss", tc.app)
		}

		code, again, xc, _ := rawQuery(t, client, base, tc.ignored)
		if code != 200 || xc != "hit" {
			t.Fatalf("%s: ignored-field variant status %d X-Cache %q, want hit (same canonical key)",
				tc.app, code, xc)
		}
		if string(again) != string(miss) {
			t.Fatalf("%s: ignored-field hit payload diverges", tc.app)
		}
	}

	runsAfter, _ := metricSample(t, fetchText(t, client, base+"/metrics"), "grazelle_runs_total")
	if got, want := runsAfter-runsBefore, float64(len(queries)); got != want {
		t.Errorf("grazelle_runs_total delta = %v across the sequence, want %v (one run per app)", got, want)
	}

	// Per-app sanity on the summary fields the registry serializers emit.
	checks := []struct {
		q   string
		key string
	}{
		{`{"app":"tc"}`, "triangles"},
		{`{"app":"kcore","k":2}`, "in_kcore"},
		{`{"app":"lp","iters":5}`, "labels"},
		{`{"app":"ppr","iters":6,"root":1}`, "rank_sum"},
	}
	for _, c := range checks {
		code, body, _, _ := rawQuery(t, client, base, c.q)
		if code != 200 {
			t.Fatalf("summary check %s: status %d body %s", c.q, code, body)
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		if _, ok := m[c.key]; !ok {
			t.Errorf("query %s: summary field %q missing from %s", c.q, c.key, body)
		}
	}
}
