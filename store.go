package grazelle

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// This file re-exports the graph store subsystem (internal/store) through
// the facade: a registry of named graphs with refcounted handles, snapshot
// persistence, a memory budget with LRU eviction, and admission control —
// the state behind `grazelle serve`.

// Store lifecycle and capacity errors. ErrOverloaded matches the typed
// admission error Store.Admit returns under errors.Is; ErrWatchdogKilled is
// the cancellation cause attached to runs the watchdog hard-cancels (detect
// with context.Cause); ErrCorruptGraph matches any deserialization failure
// caused by damaged data (including a *CorruptSnapshotError).
var (
	ErrGraphNotFound  = store.ErrNotFound
	ErrStoreClosed    = store.ErrClosed
	ErrOverloaded     = store.ErrOverloaded
	ErrWatchdogKilled = sched.ErrWatchdogKilled
	ErrCorruptGraph   = graph.ErrCorrupt
	// ErrMutationConflict reports a mutation batch that raced an Add-replace
	// or Delete of its graph and was not applied; retry against the new graph
	// if still meaningful.
	ErrMutationConflict = store.ErrMutationConflict
)

// Fault-containment types, re-exported from the internal layers.
type (
	// PanicError is a panic captured inside an engine run and converted into
	// an error: the run fails alone, the pool and sibling runs survive. It
	// carries the original panic value and stack.
	PanicError = sched.PanicError
	// CorruptSnapshotError reports a snapshot that failed validation and was
	// quarantined (sticky until the graph is re-added).
	CorruptSnapshotError = store.CorruptSnapshotError
	// RehydrateError reports a snapshot load that kept failing transiently
	// after the configured retries (not sticky; the next Acquire retries).
	RehydrateError = store.RehydrateError
	// WatchdogStats summarizes the run watchdog in StoreStats.
	WatchdogStats = sched.WatchdogStats

	// EdgeOp is one streaming edge mutation: an insert/re-weight (Delete
	// false) or removal (Delete true) of the directed edge Src→Dst. Within a
	// batch the last op for a (Src, Dst) pair wins.
	EdgeOp = graph.EdgeOp
	// DeltaBudgetError reports a mutation batch refused because the graph's
	// un-compacted overlay is over budget; compaction has been scheduled and
	// the write should be retried shortly (HTTP layers map it to 429).
	DeltaBudgetError = store.DeltaBudgetError
	// WALWedgedError reports a mutation batch refused because the graph's
	// delta log is wedged after an unrecoverable sync failure; healing
	// retries in the background and reads keep serving (HTTP: 503).
	WALWedgedError = store.WALWedgedError
	// WALStats summarizes streaming-mutation durability in StoreStats.
	WALStats = store.WALStats
	// RetireReason says why a graph version was retired; see the Retire*
	// constants.
	RetireReason = store.RetireReason
)

// Reasons passed to OnRetireReason callbacks.
const (
	RetireReplace = store.RetireReplace // Add replaced the graph
	RetireDelete  = store.RetireDelete  // Delete removed the graph
	RetireMutate  = store.RetireMutate  // ApplyEdges published a successor
	RetireCompact = store.RetireCompact // compaction folded the overlay
)

// StoreConfig configures a Store.
type StoreConfig struct {
	// DataDir is the snapshot directory; graphs added to the store are
	// persisted there and reload lazily when the store is reopened. Empty
	// disables persistence.
	DataDir string
	// MemBudgetBytes soft-caps resident graph memory: idle graphs beyond
	// the budget are evicted (least recently used first) and rehydrate from
	// their snapshots on demand. 0 means unlimited.
	MemBudgetBytes int64
	// MaxInFlight bounds concurrently admitted queries and the worker
	// pool's concurrent jobs; MaxQueue bounds callers waiting beyond that.
	// 0 disables admission control.
	MaxInFlight, MaxQueue int
	// Workers sizes the one worker pool all graphs share (0 = GOMAXPROCS).
	Workers int
	// RehydrateAttempts bounds retries of transiently failing snapshot loads
	// (default 3); RehydrateBackoff is the initial retry delay, doubling per
	// attempt and capped at one second (default 10ms). Corrupt snapshots are
	// never retried — they are quarantined.
	RehydrateAttempts int
	RehydrateBackoff  time.Duration
	// SoftRunLimit and HardRunLimit configure the run watchdog for queries
	// tracked via TrackRun: past the soft limit a run is counted as slow in
	// Stats, past the hard limit it is cancelled with cause
	// ErrWatchdogKilled. Zero disables the respective limit.
	SoftRunLimit, HardRunLimit time.Duration
	// DeltaBudgetBytes caps the acknowledged un-compacted mutation overlay
	// per graph: past it ApplyEdges returns a *DeltaBudgetError (and
	// schedules compaction) until the overlay is folded. 0 means unlimited.
	DeltaBudgetBytes int64
	// CompactAfterBytes triggers background compaction once a graph's
	// overlay passes this size. 0 disables size-triggered compaction
	// (explicit Compact calls still work).
	CompactAfterBytes int64
	// Options supplies engine options for every graph's runner. Workers and
	// Sockets are ignored: the store's shared pool runs a single-node
	// topology.
	Options Options
}

// Store is a registry of named graphs sharing one worker pool. All methods
// are safe for concurrent use; see internal/store for the lifecycle
// contract (handles pin graph versions across delete/replace/eviction).
type Store struct {
	s *store.Store
}

// OpenStore opens a Store, registering any graphs persisted under
// cfg.DataDir (cold — loaded on first Acquire).
func OpenStore(cfg StoreConfig) (*Store, error) {
	s, err := store.Open(store.Config{
		DataDir:           cfg.DataDir,
		MemBudget:         cfg.MemBudgetBytes,
		MaxInFlight:       cfg.MaxInFlight,
		MaxQueue:          cfg.MaxQueue,
		Workers:           cfg.Workers,
		RehydrateAttempts: cfg.RehydrateAttempts,
		RehydrateBackoff:  cfg.RehydrateBackoff,
		SoftRunLimit:      cfg.SoftRunLimit,
		HardRunLimit:      cfg.HardRunLimit,
		DeltaBudget:       cfg.DeltaBudgetBytes,
		CompactAfter:      cfg.CompactAfterBytes,
		Engine:            cfg.Options.coreOptions(),
	})
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// Close shuts the store down. Drain queries first; Close is idempotent.
func (s *Store) Close() error { return s.s.Close() }

// Add registers g under name, replacing any existing graph of that name;
// queries holding handles on the old version drain undisturbed. With a data
// directory configured the graph is snapshotted before it becomes visible.
func (s *Store) Add(name string, g *Graph) error { return s.s.Add(name, g.src) }

// AddFromFile loads a binary graph file (see Graph.Save / cmd/gengraph)
// directly into the store.
func (s *Store) AddFromFile(name, path string) error {
	g, err := graph.ReadFile(path)
	if err != nil {
		return err
	}
	return s.s.Add(name, g)
}

// Delete unregisters the named graph and removes its snapshot; in-flight
// handles drain undisturbed.
func (s *Store) Delete(name string) error { return s.s.Delete(name) }

// Snapshot re-persists the named graph to the data directory on demand.
func (s *Store) Snapshot(name string) error { return s.s.Snapshot(name) }

// Version returns the named graph's current version. Versions are minted
// monotonically per store and never reused: Add-replace assigns a fresh one,
// while eviction to cold and rehydration keep it. The lookup is metadata-only
// — it never rehydrates a cold graph. A (name, version, query) triple fully
// addresses a result, which is what makes query caching sound.
func (s *Store) Version(name string) (uint64, error) { return s.s.Version(name) }

// OnRetire registers fn to be called whenever a graph version is retired —
// replaced by Add, removed by Delete, superseded by ApplyEdges, or folded by
// compaction (eviction does not retire). Callbacks run outside store locks
// and must be safe for concurrent use.
func (s *Store) OnRetire(fn func(name string, version uint64)) { s.s.OnRetire(fn) }

// OnRetireReason is OnRetire with the cause of each retirement. Cache layers
// use the reason to skip invalidation for bit-preserving retirements
// (RetireCompact serves the same bytes under a new version).
func (s *Store) OnRetireReason(fn func(name string, version uint64, reason RetireReason)) {
	s.s.OnRetireReason(fn)
}

// ApplyEdges applies one batch of edge mutations to the named graph. The
// batch is durable (WAL-fsynced, when a data directory is configured) and
// visible to subsequent Acquires under the returned new version before
// ApplyEdges returns; handles already held keep serving their pinned
// versions. Within a batch the last op per (src, dst) pair wins. Returns the
// batch's WAL sequence and the new graph version, or a typed error:
// *DeltaBudgetError (overlay over budget; retry after compaction),
// *WALWedgedError (delta log wedged; healing in background), or
// ErrMutationConflict (raced a replace/delete).
func (s *Store) ApplyEdges(name string, ops []EdgeOp) (seq, version uint64, err error) {
	return s.s.ApplyEdges(name, ops)
}

// Compact folds the named graph's acknowledged mutation overlay into a fresh
// base snapshot and truncates its delta log. Serving bits are unchanged —
// the successor version is bit-identical — so compaction can run any time.
// It also runs in the background past CompactAfterBytes.
func (s *Store) Compact(name string) error { return s.s.Compact(name) }

// StoreGraphInfo describes one registered graph.
type StoreGraphInfo = store.GraphInfo

// List returns every registered graph, sorted by name.
func (s *Store) List() []StoreGraphInfo { return s.s.List() }

// StoreStats summarizes store load: graphs registered/resident, bytes
// against budget, and admission occupancy.
type StoreStats = store.Stats

// Stats returns a consistent snapshot of store load.
func (s *Store) Stats() StoreStats { return s.s.Stats() }

// Registry is a metric registry with Prometheus text exposition.
type Registry = obs.Registry

// Metrics returns the store's metric registry: gauges and counters over the
// graph registry, scheduler pool, admission controller, and watchdog. The
// counters are the same cells Stats reports, so the two views always agree.
// Serving layers render it at /metrics and may register additional families.
func (s *Store) Metrics() *Registry { return s.s.Metrics() }

// Admit gates one query through the admission controller; call the returned
// release when the query finishes. Overload returns an error matching
// ErrOverloaded; while queued, ctx cancellation is honored.
func (s *Store) Admit(ctx context.Context) (release func(), err error) {
	return s.s.Admit(ctx)
}

// Ready reports whether the store can usefully serve: nil when healthy,
// ErrStoreClosed after Close, or a degraded-state error while snapshot
// rehydration is persistently failing. Serving layers map a non-nil result
// to an unready health check.
func (s *Store) Ready() error { return s.s.Ready() }

// TrackRun registers one query with the store's watchdog (configured via
// SoftRunLimit/HardRunLimit): the returned context is cancelled with cause
// ErrWatchdogKilled if the run exceeds the hard limit. Call done when the
// run finishes. Without configured limits both returns are pass-throughs.
func (s *Store) TrackRun(ctx context.Context) (tracked context.Context, done func()) {
	return s.s.TrackRun(ctx)
}

// StoreHandle pins one version of a named graph and exposes an Engine bound
// to it. The handle (and its engine) keeps working after the graph is
// deleted, replaced, or evicted; Close releases the pin. Do not call the
// engine's Close — the store owns the worker pool.
type StoreHandle struct {
	h *store.Handle
	e *Engine
}

// Acquire returns a handle on the named graph, rehydrating it from its
// snapshot when cold.
func (s *Store) Acquire(name string) (*StoreHandle, error) {
	h, err := s.s.Acquire(name)
	if err != nil {
		return nil, err
	}
	return &StoreHandle{h: h, e: engineFor(h)}, nil
}

// engineFor adapts a store handle into a facade Engine sharing the store's
// pool and the handle's preprocessed graph.
func engineFor(h *store.Handle) *Engine {
	return &Engine{
		g: &Graph{src: h.Source(), core: h.Runner().Graph()},
		r: h.Runner(),
	}
}

// Engine returns the engine bound to this graph version.
func (h *StoreHandle) Engine() *Engine { return h.e }

// Graph returns the pinned graph.
func (h *StoreHandle) Graph() *Graph { return h.e.g }

// Name returns the graph's registered name.
func (h *StoreHandle) Name() string { return h.h.Name() }

// Version returns the store version this handle pins. It is stable for the
// handle's lifetime, even after the graph is replaced or deleted.
func (h *StoreHandle) Version() uint64 { return h.h.Version() }

// Close releases the handle's pin. Idempotent.
func (h *StoreHandle) Close() { h.h.Close() }
